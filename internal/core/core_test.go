package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"fidr/internal/blockcomp"
	"fidr/internal/hostmodel"
	"fidr/internal/trace"
)

func allArchs() []Arch { return []Arch{Baseline, FIDRNicP2P, FIDRFull} }

func newServer(t testing.TB, arch Arch) *Server {
	t.Helper()
	s, err := New(DefaultConfig(arch))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ChunkSize: 0},
		{ChunkSize: 4096, BatchChunks: 0},
		{ChunkSize: 4096, BatchChunks: 1, ContainerSize: 100},
		{ChunkSize: 4096, BatchChunks: 1, ContainerSize: 1 << 20, UniqueChunkCapacity: 0},
		{ChunkSize: 4096, BatchChunks: 1, ContainerSize: 1 << 20, UniqueChunkCapacity: 1, CacheLines: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWriteSizeValidation(t *testing.T) {
	s := newServer(t, Baseline)
	if err := s.Write(0, make([]byte, 100)); err == nil {
		t.Fatal("short write accepted")
	}
}

func TestWriteReadRoundTripAllArchs(t *testing.T) {
	sh := blockcomp.NewShaper(0.5)
	for _, arch := range allArchs() {
		s := newServer(t, arch)
		want := make(map[uint64][]byte)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 500; i++ {
			lba := uint64(rng.Intn(200))
			data := sh.Make(uint64(rng.Intn(150)), 4096)
			if err := s.Write(lba, data); err != nil {
				t.Fatalf("%v write %d: %v", arch, i, err)
			}
			want[lba] = data
		}
		// Reads must see the freshest data both before and after Flush.
		for lba, data := range want {
			got, err := s.Read(lba)
			if err != nil {
				t.Fatalf("%v read %d: %v", arch, lba, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v: pre-flush read of %d corrupted", arch, lba)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("%v flush: %v", arch, err)
		}
		for lba, data := range want {
			got, err := s.Read(lba)
			if err != nil {
				t.Fatalf("%v read %d: %v", arch, lba, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v: post-flush read of %d corrupted", arch, lba)
			}
		}
	}
}

func TestReadNotFound(t *testing.T) {
	for _, arch := range allArchs() {
		s := newServer(t, arch)
		if _, err := s.Read(42); err != ErrNotFound {
			t.Fatalf("%v: err = %v", arch, err)
		}
	}
}

func TestDeduplicationReducesStorage(t *testing.T) {
	sh := blockcomp.NewShaper(0.5)
	for _, arch := range allArchs() {
		s := newServer(t, arch)
		// 400 writes of only 40 distinct contents at distinct LBAs:
		// 90% duplicates.
		for i := 0; i < 400; i++ {
			if err := s.Write(uint64(i), sh.Make(uint64(i%40), 4096)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.UniqueChunks != 40 {
			t.Fatalf("%v: %d unique chunks, want 40", arch, st.UniqueChunks)
		}
		if st.DuplicateChunks != 360 {
			t.Fatalf("%v: %d duplicates, want 360", arch, st.DuplicateChunks)
		}
		// 10% unique at ~50% compression => ~5% of client bytes stored.
		if r := st.ReductionRatio(); r < 0.02 || r > 0.09 {
			t.Fatalf("%v: reduction ratio %.3f", arch, r)
		}
	}
}

func TestWithinBatchDuplicates(t *testing.T) {
	sh := blockcomp.NewShaper(0.5)
	for _, arch := range allArchs() {
		s := newServer(t, arch)
		// Same content at many LBAs inside one batch.
		data := sh.Make(7, 4096)
		for i := 0; i < 32; i++ {
			if err := s.Write(uint64(i), data); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.UniqueChunks != 1 || st.DuplicateChunks != 31 {
			t.Fatalf("%v: unique=%d dup=%d", arch, st.UniqueChunks, st.DuplicateChunks)
		}
		for i := 0; i < 32; i++ {
			got, err := s.Read(uint64(i))
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("%v: LBA %d broken after in-batch dedup", arch, i)
			}
		}
	}
}

func TestOverwriteSameLBA(t *testing.T) {
	sh := blockcomp.NewShaper(0.5)
	for _, arch := range allArchs() {
		s := newServer(t, arch)
		v1 := sh.Make(1, 4096)
		v2 := sh.Make(2, 4096)
		s.Write(9, v1)
		s.Write(9, v2)
		got, err := s.Read(9)
		if err != nil || !bytes.Equal(got, v2) {
			t.Fatalf("%v: overwrite not visible", arch)
		}
		s.Flush()
		got, err = s.Read(9)
		if err != nil || !bytes.Equal(got, v2) {
			t.Fatalf("%v: overwrite lost after flush", arch)
		}
	}
}

func TestFIDRBypassesHostMemoryForData(t *testing.T) {
	sh := blockcomp.NewShaper(0.5)
	base := newServer(t, Baseline)
	fidr := newServer(t, FIDRFull)
	for i := 0; i < 256; i++ {
		data := sh.Make(uint64(i%64), 4096)
		base.Write(uint64(i), data)
		fidr.Write(uint64(i), data)
	}
	base.Flush()
	fidr.Flush()

	bSnap := base.Ledger().Snapshot()
	fSnap := fidr.Ledger().Snapshot()
	// FIDR must move far less through host memory.
	if fSnap.MemPerClientByte() > bSnap.MemPerClientByte()/2 {
		t.Fatalf("FIDR mem/byte %.3f not well below baseline %.3f",
			fSnap.MemPerClientByte(), bSnap.MemPerClientByte())
	}
	// The baseline moves no P2P bytes; FIDR moves the bulk P2P.
	if base.Topology().P2PBytes() != 0 {
		t.Fatal("baseline recorded P2P traffic")
	}
	if fidr.Topology().P2PBytes() == 0 {
		t.Fatal("FIDR recorded no P2P traffic")
	}
	// FIDR's NIC->host traffic is metadata-only: far below client bytes.
	if f := fSnap.MemBytes[hostmodel.PathNICHost]; f > fSnap.ClientBytes/10 {
		t.Fatalf("FIDR NIC->host bytes %d not metadata-scale (client %d)", f, fSnap.ClientBytes)
	}
	// No predictor in FIDR.
	if fSnap.CPUNanos[hostmodel.CompPredictor] != 0 || fSnap.MemBytes[hostmodel.PathPredictor] != 0 {
		t.Fatal("FIDR charged predictor resources")
	}
	if bSnap.CPUNanos[hostmodel.CompPredictor] == 0 {
		t.Fatal("baseline did not charge predictor")
	}
}

func TestFIDRFullOffloadsTableCPU(t *testing.T) {
	sh := blockcomp.NewShaper(0.5)
	nicOnly := newServer(t, FIDRNicP2P)
	full := newServer(t, FIDRFull)
	for i := 0; i < 512; i++ {
		data := sh.Make(uint64(i%100), 4096)
		nicOnly.Write(uint64(i), data)
		full.Write(uint64(i), data)
	}
	nicOnly.Flush()
	full.Flush()
	nSnap := nicOnly.Ledger().Snapshot()
	fSnap := full.Ledger().Snapshot()
	if nSnap.CPUNanos[hostmodel.CompTreeIndex] == 0 {
		t.Fatal("software-cache FIDR charged no tree CPU")
	}
	if fSnap.CPUNanos[hostmodel.CompTreeIndex] != 0 {
		t.Fatal("full FIDR charged host tree CPU")
	}
	if fSnap.TotalCPUNanos() >= nSnap.TotalCPUNanos() {
		t.Fatalf("full FIDR CPU %d not below nic-only %d",
			fSnap.TotalCPUNanos(), nSnap.TotalCPUNanos())
	}
}

func TestNICReadHits(t *testing.T) {
	sh := blockcomp.NewShaper(0.5)
	s := newServer(t, FIDRFull)
	data := sh.Make(3, 4096)
	s.Write(5, data) // stays in NIC buffer (batch not full)
	got, err := s.Read(5)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("in-NIC read failed")
	}
	if s.Stats().NICReadHits != 1 {
		t.Fatal("NIC read hit not counted")
	}
	// Host memory untouched by this read+write pair except nothing.
	if mem := s.Ledger().Snapshot().TotalMemBytes(); mem != 0 {
		t.Fatalf("NIC-buffer-only traffic touched host memory: %d", mem)
	}
}

func TestMispredictionsHandled(t *testing.T) {
	// The baseline predictor has bounded memory; a workload with reuse
	// distance beyond its capacity forces mispredictions, which must be
	// corrected (data integrity) and counted.
	cfg := DefaultConfig(Baseline)
	cfg.PredictorCapacity = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := blockcomp.NewShaper(0.5)
	// Write 64 distinct, then repeat them: predictor forgot most.
	for round := 0; round < 2; round++ {
		for i := 0; i < 64; i++ {
			if err := s.Write(uint64(i), sh.Make(uint64(i), 4096)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Now new contents that collide with stale predictor state.
	for i := 0; i < 64; i++ {
		if err := s.Write(uint64(100+i), sh.Make(uint64(1000+i), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	ps := s.PredictorStats()
	if ps.FalseDuplicate == 0 && s.Stats().Mispredictions == 0 {
		t.Skip("predictor never mispredicted on this stream")
	}
	// Integrity despite mispredictions.
	for i := 0; i < 64; i++ {
		got, err := s.Read(uint64(100 + i))
		if err != nil || !bytes.Equal(got, sh.Make(uint64(1000+i), 4096)) {
			t.Fatalf("mispredicted chunk %d corrupted", i)
		}
	}
}

func TestTraceWorkloadIntegration(t *testing.T) {
	// Run a Table 3 workload end-to-end on every architecture and
	// cross-check reduction behaviour.
	for _, arch := range allArchs() {
		gen, err := trace.NewGenerator(trace.ReadMixed(3000))
		if err != nil {
			t.Fatal(err)
		}
		s := newServer(t, arch)
		sh := blockcomp.NewShaper(0.5)
		written := make(map[uint64]uint64)
		buf := make([]byte, 4096)
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			switch req.Op {
			case trace.OpWrite:
				sh.Block(req.ContentSeed, buf)
				if err := s.Write(req.LBA, buf); err != nil {
					t.Fatalf("%v write: %v", arch, err)
				}
				written[req.LBA] = req.ContentSeed
			case trace.OpRead:
				got, err := s.Read(req.LBA)
				if err != nil {
					t.Fatalf("%v read %d: %v", arch, req.LBA, err)
				}
				want := sh.Make(written[req.LBA], 4096)
				if !bytes.Equal(got, want) {
					t.Fatalf("%v: read of %d returned wrong content", arch, req.LBA)
				}
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.UniqueChunks+st.DuplicateChunks != st.ClientWrites {
			t.Fatalf("%v: chunks %d+%d != writes %d", arch,
				st.UniqueChunks, st.DuplicateChunks, st.ClientWrites)
		}
	}
}

func TestReadLatencyAnchors(t *testing.T) {
	p := DefaultLatency()
	base := p.ReadLatency(Baseline)
	fidr := p.ReadLatency(FIDRFull)
	if base < 650*time.Microsecond || base > 750*time.Microsecond {
		t.Errorf("baseline read latency %v, paper 700 us", base)
	}
	if fidr < 450*time.Microsecond || fidr > 530*time.Microsecond {
		t.Errorf("FIDR read latency %v, paper 490 us", fidr)
	}
	if fidr >= base {
		t.Error("FIDR not faster than baseline")
	}
	if p.WriteCommitLatency(Baseline) != p.WriteCommitLatency(FIDRFull) {
		t.Error("write commit latency differs across archs")
	}
}

func TestArchString(t *testing.T) {
	if Baseline.String() != "baseline" || FIDRNicP2P.String() != "fidr-nic-p2p" || FIDRFull.String() != "fidr-full" {
		t.Error("arch strings wrong")
	}
}

func BenchmarkWriteFIDR(b *testing.B) {
	s := newServer(b, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		sh.Block(uint64(i%1000), buf)
		if err := s.Write(uint64(i), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteBaseline(b *testing.B) {
	s := newServer(b, Baseline)
	sh := blockcomp.NewShaper(0.5)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		sh.Block(uint64(i%1000), buf)
		if err := s.Write(uint64(i), buf); err != nil {
			b.Fatal(err)
		}
	}
}
