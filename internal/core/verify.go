package core

import (
	"fmt"

	"fidr/internal/fingerprint"
)

// Offline consistency checking (extension): the dedup metadata forms a
// web of invariants — LBA mappings point at allocated PBNs, stored chunk
// contents hash to the fingerprints the Hash-PBN table indexes them
// under, and every chunk's reference count equals the number of LBA and
// snapshot mappings holding it. Verify walks all of it, like a
// filesystem's fsck, and reports violations instead of panicking:
// corruption is data, not a bug.

// VerifyReport summarizes a consistency pass.
type VerifyReport struct {
	ChunksChecked   uint64
	MappingsChecked uint64
	// Problems lists human-readable violations; empty means consistent.
	Problems []string
}

// OK reports whether the volume is fully consistent.
func (r VerifyReport) OK() bool { return len(r.Problems) == 0 }

func (r *VerifyReport) problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Verify checks the volume's metadata/data invariants. It flushes
// pending state first so the check covers everything. Read-only
// otherwise.
func (s *Server) Verify() (VerifyReport, error) {
	var rep VerifyReport
	if err := s.Flush(); err != nil {
		return rep, err
	}
	tr := s.obs.begin("verify", 0)
	defer tr.done()

	// Invariant 1: every live mapping resolves, and the stored bytes
	// decompress and hash to the recorded fingerprint.
	checkMapping := func(origin string, lba, pbn uint64) {
		rep.MappingsChecked++
		pba, err := s.lba.Resolve(pbn)
		if err != nil {
			rep.problemf("%s lba %d -> pbn %d: %v", origin, lba, pbn, err)
			return
		}
		cdata, _, err := s.fetchCompressed(pba, tr)
		if err != nil {
			rep.problemf("%s lba %d: fetch: %v", origin, lba, err)
			return
		}
		from := tr.start()
		data, err := s.decomp.Decompress(cdata, s.rawSizeOf(pbn))
		if err != nil {
			rep.problemf("%s lba %d: decompress: %v", origin, lba, err)
			return
		}
		tr.span(StageDecompress, from)
		fp, ok := s.fpOf(pbn)
		if !ok {
			rep.problemf("%s lba %d: no fingerprint recorded for pbn %d", origin, lba, pbn)
			return
		}
		from = tr.start()
		rehash := fingerprint.Of(data)
		tr.span(StageHash, from)
		if rehash != fp {
			rep.problemf("%s lba %d: content hash mismatch for pbn %d (stored data corrupted)", origin, lba, pbn)
		}
	}
	live := s.lba.Mappings()
	for lba, pbn := range live {
		checkMapping("live", lba, pbn)
	}
	for id, snap := range s.snapshots {
		for lba, pbn := range snap.mappings {
			checkMapping(fmt.Sprintf("snapshot %d", id), lba, pbn)
		}
	}

	// Invariant 2: reference counts equal the number of holders.
	holders := make(map[uint64]uint32)
	for _, pbn := range live {
		holders[pbn]++
	}
	for _, snap := range s.snapshots {
		for _, pbn := range snap.mappings {
			holders[pbn]++
		}
	}
	for pbn := uint64(0); pbn < s.lba.Chunks(); pbn++ {
		rep.ChunksChecked++
		rc, err := s.lba.RefCount(pbn)
		if err != nil {
			rep.problemf("pbn %d: %v", pbn, err)
			continue
		}
		if rc != holders[pbn] {
			rep.problemf("pbn %d: refcount %d but %d holders", pbn, rc, holders[pbn])
		}
	}

	// Invariant 3: the Hash-PBN table agrees — every referenced chunk's
	// fingerprint must look up to that chunk.
	for pbn, n := range holders {
		if n == 0 {
			continue
		}
		fp, ok := s.fpOf(pbn)
		if !ok {
			continue // already reported above
		}
		found, present, err := s.cache.Lookup(fp)
		if err != nil {
			rep.problemf("pbn %d: table lookup: %v", pbn, err)
			continue
		}
		if !present {
			rep.problemf("pbn %d: fingerprint missing from Hash-PBN table", pbn)
		} else if found != pbn {
			rep.problemf("pbn %d: Hash-PBN table maps its fingerprint to pbn %d", pbn, found)
		}
	}

	// Invariant 4: no stale Hash-PBN entries — the full table must not
	// index chunks the metadata does not know about. A crash can leave
	// these behind (write-back bucket evictions outrun the checkpoint);
	// left in place they silently dedup new writes onto wrong chunks.
	if err := s.cache.Range(func(fp fingerprint.FP, pbn uint64) {
		if pbn >= s.lba.Chunks() || pbn >= uint64(len(s.pbnFP)) || s.pbnFP[pbn] != fp {
			rep.problemf("stale Hash-PBN entry: fingerprint %x -> pbn %d (allocated chunks: %d)",
				fp[:4], pbn, s.lba.Chunks())
		}
	}); err != nil {
		return rep, err
	}

	// Invariant 5: container index — no orphaned container data beyond
	// the allocation frontier. A crash between a container's data write
	// and its metadata commit leaves such orphans.
	open := s.comp.OpenContainer()
	csize := uint64(s.cfg.ContainerSize)
	for c := open; c < open+orphanScanWindow; c++ {
		off := c * csize
		if off+csize > s.dataSSD.Config().CapacityBytes {
			break
		}
		data, err := s.dataSSD.Read(off, s.cfg.ContainerSize)
		if err != nil {
			return rep, err
		}
		if allZero(data) {
			break
		}
		rep.problemf("container %d: orphaned data on data SSD beyond allocation frontier %d", c, open)
	}
	return rep, nil
}
