package core

import (
	"bytes"
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/lbatable"
)

func TestLBASnapshotRoundTrip(t *testing.T) {
	tb, _ := lbatable.New(8192)
	p0, _ := tb.AppendChunk(1, 0, 0, 700)
	tb.AppendChunk(2, 0, 768, 900)
	tb.AppendChunk(3, 1, 0, 500)
	tb.MapLBA(9, p0)
	tb.AppendChunk(2, 1, 512, 400) // overwrite: dead bytes appear
	tb.Relocate(p0, 7, 1024)

	snap := tb.Snapshot()
	got, err := lbatable.RestoreTable(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Chunks() != tb.Chunks() || got.MappedLBAs() != tb.MappedLBAs() {
		t.Fatalf("counts differ: %d/%d vs %d/%d",
			got.Chunks(), got.MappedLBAs(), tb.Chunks(), tb.MappedLBAs())
	}
	for _, lba := range []uint64{1, 2, 3, 9} {
		a, err1 := tb.ResolveLBA(lba)
		b, err2 := got.ResolveLBA(lba)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("lba %d resolves differently: %+v vs %+v", lba, a, b)
		}
	}
	for pbn := uint64(0); pbn < tb.Chunks(); pbn++ {
		ra, _ := tb.RefCount(pbn)
		rb, _ := got.RefCount(pbn)
		if ra != rb {
			t.Fatalf("pbn %d refcount %d vs %d", pbn, ra, rb)
		}
	}
	da, db := tb.DeadBytes(), got.DeadBytes()
	if len(da) != len(db) {
		t.Fatalf("dead maps differ: %v vs %v", da, db)
	}
	for c, v := range da {
		if db[c] != v {
			t.Fatalf("dead bytes for container %d: %d vs %d", c, v, db[c])
		}
	}
	if got.NextContainer() != tb.NextContainer() {
		t.Fatal("next container differs")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := lbatable.RestoreTable([]byte("definitely not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	tb, _ := lbatable.New(4096)
	tb.AppendChunk(1, 0, 0, 100)
	snap := tb.Snapshot()
	if _, err := lbatable.RestoreTable(snap[:len(snap)-4]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	for _, arch := range []Arch{Baseline, FIDRFull} {
		cfg := DefaultConfig(arch)
		cfg.ContainerSize = 64 << 10
		s1, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sh := blockcomp.NewShaper(0.5)
		for i := uint64(0); i < 300; i++ {
			if err := s1.Write(i, sh.Make(i%120, 4096)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s1.Checkpoint(); err != nil {
			t.Fatalf("%v: checkpoint: %v", arch, err)
		}

		// Recover over the same devices.
		rcfg := cfg
		rcfg.TableSSD = s1.tableSSD
		rcfg.DataSSD = s1.dataSSD
		s2, err := RecoverServer(rcfg)
		if err != nil {
			t.Fatalf("%v: recover: %v", arch, err)
		}
		// All data readable, bit-exact.
		for i := uint64(0); i < 300; i++ {
			got, err := s2.Read(i)
			if err != nil {
				t.Fatalf("%v: recovered read %d: %v", arch, i, err)
			}
			if !bytes.Equal(got, sh.Make(i%120, 4096)) {
				t.Fatalf("%v: recovered chunk %d corrupted", arch, i)
			}
		}
		// Dedup continuity: rewriting known content must not store new
		// chunks (the Hash-PBN table survived on the table SSD).
		uniqueBefore := s2.Stats().UniqueChunks
		for i := uint64(500); i < 520; i++ {
			if err := s2.Write(i, sh.Make(i%120, 4096)); err != nil {
				t.Fatal(err)
			}
		}
		s2.Flush()
		if got := s2.Stats().UniqueChunks; got != uniqueBefore {
			t.Fatalf("%v: recovered server re-stored %d duplicate chunks", arch, got-uniqueBefore)
		}
		// New unique content continues the container sequence safely.
		if err := s2.Write(999, sh.Make(777777, 4096)); err != nil {
			t.Fatal(err)
		}
		s2.Flush()
		got, err := s2.Read(999)
		if err != nil || !bytes.Equal(got, sh.Make(777777, 4096)) {
			t.Fatalf("%v: post-recovery write broken", arch)
		}
	}
}

func TestRecoverRequiresDevices(t *testing.T) {
	if _, err := RecoverServer(DefaultConfig(FIDRFull)); err == nil {
		t.Fatal("recovery without devices accepted")
	}
}

func TestRecoverWithoutCheckpointFails(t *testing.T) {
	cfg := DefaultConfig(FIDRFull)
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.TableSSD = s1.tableSSD
	rcfg.DataSSD = s1.dataSSD
	if _, err := RecoverServer(rcfg); err == nil {
		t.Fatal("recovered from a device with no checkpoint")
	}
}

func TestCheckpointAfterCompaction(t *testing.T) {
	cfg := DefaultConfig(FIDRFull)
	cfg.ContainerSize = 64 << 10
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 128; i++ {
		s1.Write(i, sh.Make(i, 4096))
	}
	s1.Flush()
	for i := uint64(0); i < 96; i++ {
		s1.Write(i, sh.Make(50000+i, 4096))
	}
	s1.Flush()
	if _, err := s1.Compact(0.2); err != nil {
		t.Fatal(err)
	}
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.TableSSD = s1.tableSSD
	rcfg.DataSSD = s1.dataSSD
	s2, err := RecoverServer(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Relocated chunks must resolve and read correctly post-recovery.
	for i := uint64(0); i < 128; i++ {
		want := sh.Make(i, 4096)
		if i < 96 {
			want = sh.Make(50000+i, 4096)
		}
		got, err := s2.Read(i)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("LBA %d wrong after compaction + recovery: %v", i, err)
		}
	}
}
