// Package core wires the substrates into complete storage servers: the
// extended-CIDR baseline of §2.3 and the FIDR architecture of §5. Both
// are *functional* — client writes are chunked, deduplicated against a
// real Hash-PBN table, compressed, packed into containers on simulated
// SSDs, and read back bit-exact — and *instrumented*: every byte that
// moves charges the host-memory ledger, the PCIe fabric and the CPU cost
// model, producing the measurements behind Figures 4, 5, 11, 12, 14 and
// Tables 1-2.
package core

import (
	"fmt"

	"fidr/internal/blockcomp"
	"fidr/internal/chunk"
	"fidr/internal/engine"
	"fidr/internal/fingerprint"
	"fidr/internal/hashpbn"
	"fidr/internal/hostmodel"
	"fidr/internal/lanes"
	"fidr/internal/lbatable"
	"fidr/internal/metrics/events"
	"fidr/internal/nic"
	"fidr/internal/pcie"
	"fidr/internal/predictor"
	"fidr/internal/ssd"
	"fidr/internal/tablecache"
)

// Arch selects the server architecture (the Figure 14 series).
type Arch int

const (
	// Baseline is extended CIDR: host buffering, software predictor,
	// integrated hash+compression FPGA array, software table caching.
	Baseline Arch = iota
	// FIDRNicP2P adds ideas 1+2: in-NIC hashing/buffering and PCIe P2P
	// datapaths, keeping software table-cache management.
	FIDRNicP2P
	// FIDRFull adds idea 3: the Cache HW-Engine manages the table cache
	// (tree indexing + table-SSD queues in hardware).
	FIDRFull
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	switch a {
	case Baseline:
		return "baseline"
	case FIDRNicP2P:
		return "fidr-nic-p2p"
	case FIDRFull:
		return "fidr-full"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Config sizes a server.
type Config struct {
	// Arch picks the architecture.
	Arch Arch
	// ChunkSize is the deduplication granularity (4096) under fixed
	// chunking, and the raw-size fallback for metadata recovered without
	// per-chunk sizes.
	ChunkSize int
	// Chunking selects the write-path chunker. The zero value is the
	// paper's fixed ChunkSize chunking; ModeCDC switches the server to
	// variable-size content-defined chunks addressed by stream byte
	// offset (extents). CDC servers do not yet support Checkpoint or a
	// WAL: per-chunk raw sizes are not persisted.
	Chunking chunk.Config
	// BatchChunks is the accelerator batch size in chunks.
	BatchChunks int
	// ContainerSize is the compressed-chunk container size.
	ContainerSize int
	// UniqueChunkCapacity sizes the Hash-PBN table.
	UniqueChunkCapacity uint64
	// CacheLines is the table-cache size in 4-KB buckets (the paper
	// caches 2.8% of the table).
	CacheLines int
	// UpdateWidth is the HW tree's concurrent update width (FIDRFull).
	UpdateWidth int
	// HashLanes is the modeled SHA-256 core count: batch hashing (the
	// FIDR NIC's core array, the baseline's FPGA hash array) fans out
	// across this many worker goroutines. 0 selects a GOMAXPROCS-derived
	// default. Results are byte-identical at any lane count.
	HashLanes int
	// CompressLanes is the modeled compression-pipeline count for the
	// engine's lane array; same semantics as HashLanes.
	CompressLanes int
	// Compressor is the block compressor; nil selects the LZ engine.
	Compressor blockcomp.Compressor
	// NICBufferBytes is the FIDR NIC's chunk-buffer capacity.
	NICBufferBytes int
	// PredictorCapacity bounds the baseline predictor's sketch table.
	PredictorCapacity int
	// OffloadDataSSDQueues moves the data-SSD read-path NVMe queues
	// into the FPGA, removing the per-read host IO-stack cost. The
	// paper identifies this as the remaining Read-Mixed bottleneck and
	// leaves it as future work (§7.5); enabling it implements that
	// extension. FIDR architectures only.
	OffloadDataSSDQueues bool
	// ReadCacheChunks, when nonzero, keeps that many recently read
	// (decompressed) chunks in host memory to absorb skewed read
	// traffic — the §8 extension for imbalanced data-SSD reads.
	ReadCacheChunks int
	// MultiTenant enables tenant-aware table-cache replacement (§8's
	// prioritized LRU); tag requests with SetTenant and assign shares
	// with SetTenantWeight.
	MultiTenant bool
	// TableSSD / DataSSD inject existing devices (recovery and tests);
	// nil creates fresh ones. A recovered server must be given the
	// devices of the server that wrote the checkpoint, with the same
	// UniqueChunkCapacity (the table geometry must match).
	TableSSD *ssd.SSD
	DataSSD  *ssd.SSD
	// WAL, when set, write-ahead-logs every table/refcount/LBA mutation
	// so RecoverServer can replay past the last checkpoint (wal.go).
	// WALs are group-local: never share one across servers.
	WAL *WAL
}

// DefaultConfig returns a test-scale configuration (the paper-scale knobs
// are set by the benchmark harness).
func DefaultConfig(arch Arch) Config {
	return Config{
		Arch:                arch,
		ChunkSize:           4096,
		BatchChunks:         64,
		ContainerSize:       1 << 20,
		UniqueChunkCapacity: 1 << 20,
		CacheLines:          4096,
		UpdateWidth:         4,
		NICBufferBytes:      16 << 20,
		PredictorCapacity:   1 << 16,
	}
}

// Validate checks and normalizes the configuration.
func (c *Config) Validate() error {
	if c.ChunkSize <= 0 || c.ChunkSize%512 != 0 {
		return fmt.Errorf("core: chunk size %d", c.ChunkSize)
	}
	if c.BatchChunks < 1 {
		return fmt.Errorf("core: batch size %d", c.BatchChunks)
	}
	if c.ContainerSize < c.ChunkSize {
		return fmt.Errorf("core: container %d smaller than chunk", c.ContainerSize)
	}
	if c.UniqueChunkCapacity == 0 {
		return fmt.Errorf("core: zero unique-chunk capacity")
	}
	if c.CacheLines < 1 {
		return fmt.Errorf("core: cache lines %d", c.CacheLines)
	}
	if c.UpdateWidth < 1 {
		c.UpdateWidth = 1
	}
	c.HashLanes = lanes.Normalize(c.HashLanes)
	c.CompressLanes = lanes.Normalize(c.CompressLanes)
	if c.Compressor == nil {
		c.Compressor = blockcomp.NewLZ()
	}
	if c.NICBufferBytes < c.BatchChunks*c.ChunkSize {
		c.NICBufferBytes = c.BatchChunks * c.ChunkSize
	}
	if c.PredictorCapacity < 1 {
		c.PredictorCapacity = 1 << 16
	}
	if err := c.Chunking.Normalize(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Chunking.Mode == chunk.ModeCDC {
		if c.WAL != nil {
			return fmt.Errorf("core: content-defined chunking does not support a WAL (per-chunk raw sizes are not logged)")
		}
		if c.ContainerSize < c.Chunking.Max {
			return fmt.Errorf("core: container %d smaller than max CDC chunk %d", c.ContainerSize, c.Chunking.Max)
		}
		// An incompressible Max-size chunk must still fit the LBA table's
		// 16-bit compressed-size field after the compressor's worst-case
		// token overhead.
		if c.Chunking.Max+cdcCompressSlack > lbatable.MaxCSize {
			return fmt.Errorf("core: max CDC chunk %d + compression slack exceeds storable size %d",
				c.Chunking.Max, lbatable.MaxCSize)
		}
		if c.NICBufferBytes < 4*c.Chunking.Max {
			c.NICBufferBytes = 4 * c.Chunking.Max
		}
	}
	return nil
}

// cdcCompressSlack bounds the compressor's expansion on incompressible
// input (the LZ engine's token-stream overhead is a few bytes; one
// container offset unit is a comfortable margin).
const cdcCompressSlack = lbatable.OffsetUnit

// Device names on the PCIe fabric.
const (
	devNIC     pcie.DeviceID = "nic0"
	devFPGA    pcie.DeviceID = "fpga0" // baseline integrated hash+compress array
	devComp    pcie.DeviceID = "comp0" // FIDR compression engine
	devDecomp  pcie.DeviceID = "decomp0"
	devCacheHW pcie.DeviceID = "cache-engine"
	devDataSSD pcie.DeviceID = "dssd0"
)

// pending is one buffered, not-yet-processed client write.
type pending struct {
	lba  uint64
	data []byte
	// tenant tags the request for multi-tenant cache attribution:
	// batching defers table lookups, so the tenant at *submission*
	// time must travel with the request.
	tenant string
	// predictedUnique is the baseline predictor's guess.
	predictedUnique bool
}

// Stats aggregates server-level counters.
type Stats struct {
	ClientWrites     uint64
	ClientReads      uint64
	ClientBytes      uint64
	DuplicateChunks  uint64
	UniqueChunks     uint64
	StoredBytes      uint64 // compressed bytes written to data SSDs
	NICReadHits      uint64
	ReadCacheHits    uint64 // §8 hot-block read cache hits
	PendingReads     uint64 // reads served from the open container
	BatchesProcessed uint64
	Mispredictions   uint64 // baseline: predicted-dup chunks that were unique

	// Reduction-attribution ledger: every processed write chunk lands in
	// exactly one bucket, so after Flush
	//
	//	LogicalWriteBytes = DedupSavedBytes + CompressionSavedBytes + StoredBytes
	//
	// holds exactly; mid-stream the difference is the chunks still
	// buffered ahead of batch processing (open-container slack). Note the
	// ledger is per-process: recovery rebuilds mappings, not history.
	LogicalWriteBytes     uint64 // client write payload (reads excluded)
	DedupSavedBytes       uint64 // chunk-size bytes absorbed by duplicate hits
	CompressionSavedBytes uint64 // raw-minus-compressed bytes on unique chunks
	DeletedFingerprints   uint64 // Hash-PBN entries dropped by GC
	ReclaimedDeadBytes    uint64 // dead compressed bytes in GC-retired containers
}

// ReductionRatio is stored/client bytes (lower is better). An empty
// store reports 0 by convention: "no data" must not render as "no
// reduction achieved" (ratio 1) on dashboards.
func (s Stats) ReductionRatio() float64 {
	if s.ClientBytes == 0 {
		return 0
	}
	return float64(s.StoredBytes) / float64(s.ClientBytes)
}

// Server is one storage server instance. Not safe for concurrent use;
// wrap with external serialization for network frontends.
type Server struct {
	cfg    Config
	geom   hashpbn.Geometry
	ledger *hostmodel.Ledger
	costs  hostmodel.CostParams
	topo   *pcie.Topology

	fnic *nic.FIDR
	pnic *nic.Plain
	pred *predictor.Predictor

	comp   *engine.Compression
	decomp *engine.Decompression

	cache *tablecache.Cache
	lba   *lbatable.Table

	dataSSD  *ssd.SSD
	tableSSD *ssd.SSD

	batch   []pending
	rcache  *readCache
	latency latencyTracker
	stats   Stats
	// wal is the group-local write-ahead log (nil disables logging).
	wal *WAL
	// crash is the injection state for the crash-recovery harness.
	crash crashState
	// recovery reports what the last RecoverServer pass did.
	recovery RecoveryReport
	// obs is the live observability hookup; nil (disabled) unless
	// EnableObservability was called. All hooks are nil-safe.
	obs *Observer
	// activeReq is the request trace currently on the stack (the server
	// is single-writer), so batch flushes triggered mid-request can link
	// their spans under the tipping request's trace.
	activeReq *ReqTrace

	// chunker is the server's content-defined chunker: non-nil exactly
	// when cfg.Chunking.Mode is ModeCDC. FIDR servers chunk inside the
	// NIC (BufferStream); the baseline chunks here in host software.
	// cbounds is the baseline path's reusable boundary scratch.
	chunker *chunk.CDC
	cbounds []int

	// pbnFP records each PBN's fingerprint for garbage collection
	// (real systems keep it in container metadata).
	pbnFP []fingerprint.FP
	// pbnRaw records each PBN's uncompressed size so reads know how many
	// bytes to decompress. Essential under CDC (chunks vary in size);
	// maintained in fixed mode too, where every entry equals ChunkSize.
	// Not persisted by Checkpoint — rawSizeOf falls back to ChunkSize for
	// recovered (always fixed-mode) metadata.
	pbnRaw []uint32
	// reclaimed lists containers retired by Compact.
	reclaimed []uint64
	// fpLive counts live Hash-PBN table entries. The table cache has no
	// occupancy counter of its own (Range charges SSD reads), so the
	// server tracks inserts/deletes at their call sites.
	fpLive uint64
	// journal receives structured capacity events (GC, checkpoint,
	// recovery); nil disables emission. group labels this server's
	// events in a shared cluster journal. recovered marks a server built
	// by RecoverServer so SetEventJournal can emit the recovery event
	// retroactively (the journal attaches after construction).
	journal   *events.Journal
	group     int
	recovered bool

	// snapshots holds point-in-time mapping copies (snapshot.go).
	snapshots  map[SnapshotID]*snapshotState
	nextSnapID uint64

	// Multi-tenant accounting (§8). fidrTenants aligns with the NIC's
	// buffered entries so deferred batch processing attributes each
	// request's cache work to its submitting tenant.
	tenant      string
	fidrTenants []string
	tenantStats map[string]TenantStats
}

// New builds a server.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ledger := hostmodel.NewLedger()
	costs := hostmodel.DefaultCosts()

	topo := pcie.NewTopology()
	if err := topo.AddSwitch("sw0"); err != nil {
		return nil, err
	}
	for _, d := range []pcie.DeviceID{devNIC, devComp, devDecomp, devDataSSD, devFPGA} {
		if err := topo.AddDevice(d, "sw0"); err != nil {
			return nil, err
		}
	}
	if err := topo.AddDevice(devCacheHW, ""); err != nil {
		return nil, err
	}

	geom, err := hashpbn.GeometryFor(cfg.UniqueChunkCapacity, 0.5)
	if err != nil {
		return nil, err
	}
	tableSSD := cfg.TableSSD
	if tableSSD == nil {
		tssdCfg := ssd.Samsung970Pro("table-ssd")
		// Room for the table plus the metadata checkpoint region.
		if need := geom.TableBytes()*3 + (1 << 30); need > tssdCfg.CapacityBytes {
			tssdCfg.CapacityBytes = need
		}
		tableSSD, err = ssd.New(tssdCfg)
		if err != nil {
			return nil, err
		}
	}
	dataSSD := cfg.DataSSD
	if dataSSD == nil {
		dataSSD, err = ssd.New(ssd.Samsung970Pro("data-ssd"))
		if err != nil {
			return nil, err
		}
	}

	mode := tablecache.Software
	width := 1
	if cfg.Arch == FIDRFull {
		mode = tablecache.HW
		width = cfg.UpdateWidth
	}
	cache, err := tablecache.New(tablecache.Config{
		Geometry:    geom,
		CacheLines:  cfg.CacheLines,
		Mode:        mode,
		UpdateWidth: width,
		TableSSD:    tableSSD,
		Ledger:      ledger,
		Costs:       costs,
		MultiTenant: cfg.MultiTenant,
	})
	if err != nil {
		return nil, err
	}

	lba, err := lbatable.New(cfg.ContainerSize)
	if err != nil {
		return nil, err
	}
	comp, err := engine.NewCompression(cfg.Compressor, cfg.ContainerSize)
	if err != nil {
		return nil, err
	}
	comp.SetCompressLanes(cfg.CompressLanes)

	s := &Server{
		cfg:      cfg,
		geom:     geom,
		ledger:   ledger,
		costs:    costs,
		topo:     topo,
		comp:     comp,
		decomp:   engine.NewDecompression(cfg.Compressor),
		cache:    cache,
		lba:      lba,
		dataSSD:  dataSSD,
		tableSSD: tableSSD,
		wal:      cfg.WAL,
	}
	if cfg.Chunking.Mode == chunk.ModeCDC {
		s.chunker, err = cfg.Chunking.NewChunker()
		if err != nil {
			return nil, err
		}
	}
	if cfg.Arch == Baseline {
		s.pnic = nic.NewPlain()
		s.pred = predictor.New(cfg.PredictorCapacity, ledger, costs)
	} else {
		s.fnic, err = nic.New(nic.Config{
			BufferBytes: cfg.NICBufferBytes,
			HashLanes:   cfg.HashLanes,
			Chunking:    cfg.Chunking,
		})
		if err != nil {
			return nil, err
		}
	}
	s.rcache = newReadCache(cfg.ReadCacheChunks)
	s.latency = newLatencyTracker(DefaultLatency())
	return s, nil
}

// ReadCacheHitRate reports the hot-block read cache's hit rate (0 when
// the cache is disabled).
func (s *Server) ReadCacheHitRate() float64 { return s.rcache.hitRate() }

// SetTenant tags subsequent requests with a tenant for multi-tenant
// cache management and per-tenant accounting (§8).
func (s *Server) SetTenant(tenant string) {
	s.tenant = tenant
	s.cache.SetTenant(tenant)
}

// SetTenantWeight assigns a tenant's table-cache share weight
// (multi-tenant mode only).
func (s *Server) SetTenantWeight(tenant string, w float64) {
	s.cache.SetTenantWeight(tenant, w)
}

// TenantStats returns per-tenant request counters (empty tenant tag
// accumulates under "").
func (s *Server) TenantStats() map[string]TenantStats {
	out := make(map[string]TenantStats, len(s.tenantStats))
	for k, v := range s.tenantStats {
		out[k] = v
	}
	return out
}

// TenantStats counts one tenant's activity.
type TenantStats struct {
	Writes uint64
	Reads  uint64
}

func (s *Server) chargeTenant(write bool) {
	if s.tenantStats == nil {
		s.tenantStats = make(map[string]TenantStats)
	}
	ts := s.tenantStats[s.tenant]
	if write {
		ts.Writes++
	} else {
		ts.Reads++
	}
	s.tenantStats[s.tenant] = ts
}

// Arch returns the server's architecture.
func (s *Server) Arch() Arch { return s.cfg.Arch }

// Config returns the server's configuration.
func (s *Server) Config() Config { return s.cfg }

// ChunkSize returns the deduplication granularity in bytes (fixed
// chunking; under CDC, chunk sizes vary per chunk).
func (s *Server) ChunkSize() int { return s.cfg.ChunkSize }

// Chunking returns the server's chunking configuration.
func (s *Server) Chunking() chunk.Config { return s.cfg.Chunking }

// rawSizeOf returns a stored chunk's uncompressed size. Metadata
// recovered from a checkpoint predates per-chunk size tracking in this
// process; such servers are always fixed-mode, so ChunkSize is exact.
func (s *Server) rawSizeOf(pbn uint64) int {
	if pbn < uint64(len(s.pbnRaw)) && s.pbnRaw[pbn] != 0 {
		return int(s.pbnRaw[pbn])
	}
	return s.cfg.ChunkSize
}

// Ledger exposes the host resource ledger.
func (s *Server) Ledger() *hostmodel.Ledger { return s.ledger }

// Topology exposes the PCIe fabric ledger.
func (s *Server) Topology() *pcie.Topology { return s.topo }

// Stats returns server-level counters.
func (s *Server) Stats() Stats { return s.stats }

// CacheStats returns table-cache statistics.
func (s *Server) CacheStats() tablecache.Stats { return s.cache.Stats() }

// EngineStats returns compression engine statistics.
func (s *Server) EngineStats() engine.Stats { return s.comp.Stats() }

// PredictorStats returns baseline predictor statistics (zero for FIDR).
func (s *Server) PredictorStats() predictor.Stats {
	if s.pred == nil {
		return predictor.Stats{}
	}
	return s.pred.Stats()
}

// NICStats returns FIDR NIC statistics (zero for the baseline).
func (s *Server) NICStats() nic.Stats {
	if s.fnic != nil {
		return s.fnic.Stats()
	}
	return s.pnic.Stats()
}

// DataSSDStats and TableSSDStats expose device counters.
func (s *Server) DataSSDStats() ssd.Stats  { return s.dataSSD.Stats() }
func (s *Server) TableSSDStats() ssd.Stats { return s.tableSSD.Stats() }

// WALStats returns write-ahead-log counters (zero without a WAL).
func (s *Server) WALStats() WALStats {
	if s.wal == nil {
		return WALStats{}
	}
	return s.wal.Stats()
}

// transfer moves bytes on the PCIe fabric, panicking on topology bugs
// (all devices are registered at construction).
func (s *Server) transfer(from, to pcie.DeviceID, n uint64) {
	if n == 0 {
		return
	}
	if _, err := s.topo.Transfer(from, to, n); err != nil {
		panic(fmt.Sprintf("core: pcie transfer %s->%s: %v", from, to, err))
	}
}
