package core

import (
	"container/list"

	"fidr/internal/bufpool"
)

// readCache is the §8 hot-block extension: an LRU of decompressed chunks
// in host memory, consulted before the backend on FIDR reads. It absorbs
// skewed read traffic that would otherwise hammer one data SSD, at the
// price of host DRAM capacity (cheap) and a host-memory copy per hit.
type readCache struct {
	capacity int
	order    *list.List
	index    map[uint64]*list.Element

	hits, misses uint64
}

type readCacheEntry struct {
	lba  uint64
	data []byte
}

func newReadCache(capacity int) *readCache {
	if capacity <= 0 {
		return nil
	}
	return &readCache{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[uint64]*list.Element, capacity),
	}
}

// get returns a copy of the cached chunk, if present.
func (c *readCache) get(lba uint64) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	el, ok := c.index[lba]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	src := el.Value.(*readCacheEntry).data
	out := make([]byte, len(src))
	copy(out, src)
	return out, true
}

// put caches a chunk (copied), evicting the LRU entry when full.
func (c *readCache) put(lba uint64, data []byte) {
	if c == nil {
		return
	}
	if el, ok := c.index[lba]; ok {
		e := el.Value.(*readCacheEntry)
		if len(e.data) == len(data) {
			copy(e.data, data)
		} else {
			bufpool.Put(e.data)
			cp := bufpool.Get(len(data))
			copy(cp, data)
			e.data = cp
		}
		c.order.MoveToFront(el)
		return
	}
	cp := bufpool.Get(len(data))
	copy(cp, data)
	c.index[lba] = c.order.PushFront(&readCacheEntry{lba: lba, data: cp})
	if c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		evicted := back.Value.(*readCacheEntry)
		delete(c.index, evicted.lba)
		bufpool.Put(evicted.data)
	}
}

// invalidate drops a stale entry after an overwrite.
func (c *readCache) invalidate(lba uint64) {
	if c == nil {
		return
	}
	if el, ok := c.index[lba]; ok {
		c.order.Remove(el)
		delete(c.index, lba)
		bufpool.Put(el.Value.(*readCacheEntry).data)
	}
}

// hitRate returns hits/(hits+misses).
func (c *readCache) hitRate() float64 {
	if c == nil || c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}
