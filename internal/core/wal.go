package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fidr/internal/fingerprint"
	"fidr/internal/metrics"
)

// Write-ahead logging (extension). Checkpoint makes the volatile dedup
// metadata (LBA-PBA mapping, reference counts, per-PBN fingerprints)
// durable, but everything between checkpoints dies with the process. The
// WAL closes that gap: every table/refcount/LBA mutation appends one
// fixed-size record, records are fsynced in batches at container-flush
// boundaries, and RecoverServer replays the log over the last checkpoint.
//
// The log is group-local: each server (device group) owns one WAL, just
// as it owns its table and data SSDs — there is no cross-group ordering
// to preserve because groups shard by LBA and never share chunks.
//
// Durability rule (metadata never leads data): a record that references
// container C is only eligible for flushing once C has been sealed and
// written to the data SSD. Records are staged in memory in mutation
// order and committed as the longest FIFO prefix whose container
// barriers are satisfied, one fsync per batch. Client writes buffered in
// the open container are acked from the NIC's battery-backed memory
// (§5.3 step 1), so a crash loses no acknowledged data in the modeled
// system; the recovered state is the prefix up to the last sealed
// container.
//
// Record frame (little-endian):
//
//	u32 payload length (fixed, walPayloadSize)
//	u32 CRC-32 (IEEE) of the payload
//	u8  kind
//	u64 seq        (monotonic from 1; 0 means "before any record")
//	u64 lba
//	u64 pbn
//	u64 container
//	u32 offset
//	u32 csize
//	32B fingerprint
//
// Replay walks frames from offset 0 and stops cleanly at the first
// invalid frame (bad length, bad CRC, short read): a torn tail is the
// expected shape of a crash, not corruption to panic over. Records with
// seq <= the checkpoint's recorded seq are skipped, so a crash between
// checkpoint write and log truncation cannot double-apply mutations.

// WALKind tags one logged mutation.
type WALKind uint8

const (
	// WALAppend is a unique-chunk admission: AppendChunk + Hash-PBN
	// insert + per-PBN fingerprint. PBN records the allocated PBN so
	// replay can verify it re-derives the same allocation.
	WALAppend WALKind = iota + 1
	// WALMapLBA is an LBA-PBA (re)mapping with its refcount moves.
	WALMapLBA
	// WALRelocate moves a live chunk to a new container (GC).
	WALRelocate
	// WALRetire retires a fully-dead container (GC).
	WALRetire
	// WALDeleteFP drops a dead chunk's Hash-PBN entry (GC).
	WALDeleteFP
)

// String implements fmt.Stringer.
func (k WALKind) String() string {
	switch k {
	case WALAppend:
		return "append"
	case WALMapLBA:
		return "map-lba"
	case WALRelocate:
		return "relocate"
	case WALRetire:
		return "retire"
	case WALDeleteFP:
		return "delete-fp"
	default:
		return fmt.Sprintf("WALKind(%d)", int(k))
	}
}

const (
	walHeaderSize  = 8 // u32 length + u32 crc
	walPayloadSize = 1 + 8 + 8 + 8 + 8 + 4 + 4 + fingerprint.Size
	walFrameSize   = walHeaderSize + walPayloadSize
)

// WALRecord is one decoded log record.
type WALRecord struct {
	Kind      WALKind
	Seq       uint64
	LBA       uint64
	PBN       uint64
	Container uint64
	Offset    uint32
	CSize     uint32
	FP        fingerprint.FP
}

func (r WALRecord) encode(dst []byte) {
	payload := dst[walHeaderSize:walFrameSize]
	payload[0] = byte(r.Kind)
	binary.LittleEndian.PutUint64(payload[1:], r.Seq)
	binary.LittleEndian.PutUint64(payload[9:], r.LBA)
	binary.LittleEndian.PutUint64(payload[17:], r.PBN)
	binary.LittleEndian.PutUint64(payload[25:], r.Container)
	binary.LittleEndian.PutUint32(payload[33:], r.Offset)
	binary.LittleEndian.PutUint32(payload[37:], r.CSize)
	copy(payload[41:], r.FP[:])
	binary.LittleEndian.PutUint32(dst[0:], walPayloadSize)
	binary.LittleEndian.PutUint32(dst[4:], crc32.ChecksumIEEE(payload))
}

func decodeWALRecord(frame []byte) (WALRecord, bool) {
	if len(frame) < walFrameSize {
		return WALRecord{}, false
	}
	if binary.LittleEndian.Uint32(frame[0:]) != walPayloadSize {
		return WALRecord{}, false
	}
	payload := frame[walHeaderSize:walFrameSize]
	if binary.LittleEndian.Uint32(frame[4:]) != crc32.ChecksumIEEE(payload) {
		return WALRecord{}, false
	}
	var r WALRecord
	r.Kind = WALKind(payload[0])
	if r.Kind < WALAppend || r.Kind > WALDeleteFP {
		return WALRecord{}, false
	}
	r.Seq = binary.LittleEndian.Uint64(payload[1:])
	r.LBA = binary.LittleEndian.Uint64(payload[9:])
	r.PBN = binary.LittleEndian.Uint64(payload[17:])
	r.Container = binary.LittleEndian.Uint64(payload[25:])
	r.Offset = binary.LittleEndian.Uint32(payload[33:])
	r.CSize = binary.LittleEndian.Uint32(payload[37:])
	copy(r.FP[:], payload[41:])
	return r, true
}

// WALDevice is the durable byte store under a WAL. *os.File satisfies
// it; MemWALDevice provides an in-memory device with explicit crash and
// fault semantics for tests.
type WALDevice interface {
	io.WriterAt
	io.ReaderAt
	Sync() error
	Truncate(size int64) error
}

var _ WALDevice = (*os.File)(nil)

// WALStats snapshots log activity.
type WALStats struct {
	// AppendedRecords counts records durably committed (written+synced).
	AppendedRecords uint64
	// ReplayedRecords counts records applied by Replay.
	ReplayedRecords uint64
	// Syncs counts fsync batches (one per commit with work to do).
	Syncs uint64
	// PendingRecords is the staged-but-not-yet-committed count.
	PendingRecords int
	// DurableBytes is the committed log length.
	DurableBytes int64
}

type stagedRec struct {
	rec WALRecord
	// barrier is the first container index at which the record may be
	// committed: OpenContainer() >= barrier means every container the
	// record references is sealed and on the data SSD.
	barrier uint64
}

// WAL is one group-local write-ahead log. Like Server, it is
// single-owner: the server goroutine stages and commits; Stats is safe
// to read concurrently only after the owner is quiesced.
type WAL struct {
	dev    WALDevice
	closer io.Closer

	size    int64 // committed (durable) log length in bytes
	nextSeq uint64
	staged  []stagedRec

	// group, when non-nil, collects staged records so a multi-record
	// operation (a GC pass) commits atomically under one barrier.
	group []stagedRec
	inGrp bool

	mu    sync.Mutex // guards stats against concurrent Stats() readers
	stats WALStats

	obsAppended, obsReplayed *metrics.Counter
	obsFsync                 *metrics.Histogram
	obsPending, obsBytes     *metrics.Gauge

	// fsyncStartNS is the wall-clock start of the in-flight device Sync,
	// 0 when none is running. The health plane's fsync-deadline watchdog
	// reads it via FsyncInFlight without taking any WAL locks.
	fsyncStartNS atomic.Int64
}

// NewWAL opens a WAL over dev, scanning any existing records to find the
// durable tail and the next sequence number. A torn or corrupt tail is
// ignored (the log ends at the last valid record).
func NewWAL(dev WALDevice) (*WAL, error) {
	if dev == nil {
		return nil, fmt.Errorf("core: nil WAL device")
	}
	w := &WAL{dev: dev, nextSeq: 1}
	off := int64(0)
	var frame [walFrameSize]byte
	for {
		n, err := dev.ReadAt(frame[:], off)
		if n < walFrameSize {
			break
		}
		rec, ok := decodeWALRecord(frame[:])
		if !ok {
			break
		}
		off += walFrameSize
		w.nextSeq = rec.Seq + 1
		if err != nil {
			break
		}
	}
	w.size = off
	w.stats.DurableBytes = off
	return w, nil
}

// OpenWALFile opens (creating if absent) a file-backed WAL. Close the
// WAL to release the file handle.
func OpenWALFile(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: open wal: %w", err)
	}
	w, err := NewWAL(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.closer = f
	return w, nil
}

// Close releases the underlying device, if it is closable.
func (w *WAL) Close() error {
	if w.closer != nil {
		return w.closer.Close()
	}
	return nil
}

// Instrument mirrors WAL activity into reg: "wal.appended_records" and
// "wal.replayed_records" counters, a "wal.fsync_ns" histogram of commit
// fsync times, and "wal.pending_records" / "wal.durable_bytes" gauges.
// Counters are seeded with activity that predates the call (recovery
// replays before observability attaches).
func (w *WAL) Instrument(reg *metrics.Registry) {
	w.obsAppended = reg.Counter("wal.appended_records")
	w.obsReplayed = reg.Counter("wal.replayed_records")
	w.obsFsync = reg.Histogram("wal.fsync_ns")
	w.obsPending = reg.Gauge("wal.pending_records")
	w.obsBytes = reg.Gauge("wal.durable_bytes")
	st := w.Stats()
	w.obsAppended.Add(st.AppendedRecords)
	w.obsReplayed.Add(st.ReplayedRecords)
	w.obsPending.Set(float64(st.PendingRecords))
	w.obsBytes.Set(float64(st.DurableBytes))
}

// FsyncInFlight reports whether a device Sync is running right now and
// for how long. Lock-free (one atomic load), so the health watchdog can
// probe it on every tick without touching the commit path: a Sync that
// has been in flight past the probe deadline means the WAL device is
// hung, the stall the flight recorder most wants evidence of.
func (w *WAL) FsyncInFlight(now time.Time) (time.Duration, bool) {
	start := w.fsyncStartNS.Load()
	if start == 0 {
		return 0, false
	}
	d := now.Sub(time.Unix(0, start))
	if d < 0 {
		d = 0
	}
	return d, true
}

// Stats snapshots log counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.PendingRecords = len(w.staged) + len(w.group)
	st.DurableBytes = w.size
	return st
}

// LastSeq returns the highest sequence number assigned so far (0 when
// the log has never held a record).
func (w *WAL) LastSeq() uint64 { return w.nextSeq - 1 }

// ensureSeqAfter advances the sequence counter past seq. Recovery calls
// this with the checkpoint's covered sequence: a WAL truncated by that
// checkpoint rescans to sequence 1, and without realignment its fresh
// records would sit below the checkpoint mark and be skipped by the
// next replay.
func (w *WAL) ensureSeqAfter(seq uint64) {
	if w.nextSeq <= seq {
		w.nextSeq = seq + 1
	}
}

// stage assigns the next sequence number and queues the record. Records
// inside a group are held aside and merged by EndGroup.
func (w *WAL) stage(rec WALRecord, barrier uint64) {
	rec.Seq = w.nextSeq
	w.nextSeq++
	sr := stagedRec{rec: rec, barrier: barrier}
	if w.inGrp {
		w.group = append(w.group, sr)
		return
	}
	w.staged = append(w.staged, sr)
}

// BeginGroup opens an atomic record group: records staged until EndGroup
// commit together under the group's highest container barrier, so a
// multi-record operation (a GC pass) can never be half-replayed ahead of
// its data.
func (w *WAL) BeginGroup() { w.inGrp = true }

// EndGroup closes the group opened by BeginGroup.
func (w *WAL) EndGroup() {
	w.inGrp = false
	if len(w.group) == 0 {
		return
	}
	var maxBarrier uint64
	for i := range w.group {
		if w.group[i].barrier > maxBarrier {
			maxBarrier = w.group[i].barrier
		}
	}
	for i := range w.group {
		w.group[i].barrier = maxBarrier
	}
	w.staged = append(w.staged, w.group...)
	w.group = nil
}

// commit durably appends the longest staged prefix whose container
// barriers are satisfied: every record referencing a container below
// durableContainers is eligible. One device write and one fsync cover
// the whole batch. On error nothing is consumed; a later commit retries
// at the same offset, overwriting any partially written bytes.
func (w *WAL) commit(durableContainers uint64) error {
	n := 0
	for n < len(w.staged) && w.staged[n].barrier <= durableContainers {
		n++
	}
	if n == 0 {
		w.publishGauges()
		return nil
	}
	buf := make([]byte, n*walFrameSize)
	for i := 0; i < n; i++ {
		w.staged[i].rec.encode(buf[i*walFrameSize:])
	}
	wrote, err := w.dev.WriteAt(buf, w.size)
	if err != nil {
		return fmt.Errorf("core: wal append: %w", err)
	}
	if wrote < len(buf) {
		return fmt.Errorf("core: wal append: short write (%d of %d bytes)", wrote, len(buf))
	}
	t0 := time.Now()
	w.fsyncStartNS.Store(t0.UnixNano())
	err = w.dev.Sync()
	w.fsyncStartNS.Store(0)
	if err != nil {
		return fmt.Errorf("core: wal sync: %w", err)
	}
	syncNS := time.Since(t0).Nanoseconds()

	w.size += int64(len(buf))
	w.staged = append(w.staged[:0], w.staged[n:]...)
	w.mu.Lock()
	w.stats.AppendedRecords += uint64(n)
	w.stats.Syncs++
	w.mu.Unlock()
	if w.obsAppended != nil {
		w.obsAppended.Add(uint64(n))
		w.obsFsync.Observe(float64(syncNS))
	}
	w.publishGauges()
	return nil
}

func (w *WAL) publishGauges() {
	if w.obsPending == nil {
		return
	}
	w.obsPending.Set(float64(len(w.staged) + len(w.group)))
	w.obsBytes.Set(float64(w.size))
}

// Replay walks the durable log from the beginning, applying every valid
// record with seq > afterSeq, and returns how many were applied. It
// stops cleanly — no error — at the first torn or corrupt frame; a
// damaged tail is what a crash leaves behind. An apply error aborts the
// replay and is returned.
func (w *WAL) Replay(afterSeq uint64, apply func(WALRecord) error) (int, error) {
	off := int64(0)
	applied := 0
	var frame [walFrameSize]byte
	for {
		n, _ := w.dev.ReadAt(frame[:], off)
		if n < walFrameSize {
			break
		}
		rec, ok := decodeWALRecord(frame[:])
		if !ok {
			break
		}
		off += walFrameSize
		if rec.Seq <= afterSeq {
			continue
		}
		if err := apply(rec); err != nil {
			return applied, fmt.Errorf("core: wal replay seq %d (%s): %w", rec.Seq, rec.Kind, err)
		}
		applied++
	}
	w.mu.Lock()
	w.stats.ReplayedRecords += uint64(applied)
	w.mu.Unlock()
	if w.obsReplayed != nil {
		w.obsReplayed.Add(uint64(applied))
	}
	return applied, nil
}

// Reset truncates the log (the checkpoint-truncation rule: once a
// checkpoint persists every mutation's effect, the records are dead
// weight). Staged records are dropped too — the checkpoint that
// triggered the reset captured their effects, and its recorded sequence
// number covers them.
func (w *WAL) Reset() error {
	if err := w.dev.Truncate(0); err != nil {
		return fmt.Errorf("core: wal truncate: %w", err)
	}
	if err := w.dev.Sync(); err != nil {
		return fmt.Errorf("core: wal truncate sync: %w", err)
	}
	w.size = 0
	w.staged = w.staged[:0]
	w.group = nil
	w.publishGauges()
	return nil
}

// --- In-memory WAL device (tests, benchmarks) ---

// MemWALDevice is an in-memory WALDevice with explicit durability: bytes
// written become durable only when Sync succeeds, Crash discards
// everything after the last successful sync, and faults (failed syncs,
// short writes) can be armed to exercise failure paths.
type MemWALDevice struct {
	mu      sync.Mutex
	buf     []byte // live contents (includes unsynced bytes)
	durable []byte // contents as of the last successful Sync

	failSyncs   int
	shortWrites int
	faultErr    error
}

// NewMemWALDevice returns an empty in-memory WAL device.
func NewMemWALDevice() *MemWALDevice { return &MemWALDevice{} }

// errWALFault is the default injected-fault error.
var errWALFault = errors.New("core: injected WAL device fault")

// InjectFaults arms the next nShortWrites WriteAt calls to write only
// half their payload and fail, and the next nFailSyncs Sync calls to
// fail without making data durable. err defaults to a generic fault.
func (d *MemWALDevice) InjectFaults(nShortWrites, nFailSyncs int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err == nil {
		err = errWALFault
	}
	d.shortWrites, d.failSyncs, d.faultErr = nShortWrites, nFailSyncs, err
}

// WriteAt implements WALDevice.
func (d *MemWALDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	short := false
	if d.shortWrites > 0 {
		d.shortWrites--
		short = true
		p = p[:len(p)/2]
	}
	end := off + int64(len(p))
	if int64(len(d.buf)) < end {
		grown := make([]byte, end)
		copy(grown, d.buf)
		d.buf = grown
	}
	copy(d.buf[off:end], p)
	if short {
		return len(p), d.faultErr
	}
	return len(p), nil
}

// ReadAt implements WALDevice, reading the live (possibly unsynced)
// contents — matching a file read from the owning process.
func (d *MemWALDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off >= int64(len(d.buf)) {
		return 0, io.EOF
	}
	n := copy(p, d.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Sync implements WALDevice: the live contents become the durable image.
func (d *MemWALDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failSyncs > 0 {
		d.failSyncs--
		return d.faultErr
	}
	d.durable = append(d.durable[:0], d.buf...)
	return nil
}

// Truncate implements WALDevice. Truncation is treated as immediately
// visible but, like writes, durable only after Sync.
func (d *MemWALDevice) Truncate(size int64) (err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("core: negative truncate %d", size)
	}
	if int64(len(d.buf)) > size {
		d.buf = d.buf[:size]
	} else {
		for int64(len(d.buf)) < size {
			d.buf = append(d.buf, 0)
		}
	}
	return nil
}

// Crash discards everything after the last successful Sync, simulating
// power loss. The device remains usable (recovery opens it again).
func (d *MemWALDevice) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buf = append(d.buf[:0], d.durable...)
}

// Len returns the live contents length.
func (d *MemWALDevice) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buf)
}

// Corrupt flips a byte at off in the live and durable images, for
// torn-record tests.
func (d *MemWALDevice) Corrupt(off int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < int64(len(d.buf)) {
		d.buf[off] ^= 0xFF
	}
	if off < int64(len(d.durable)) {
		d.durable[off] ^= 0xFF
	}
}
