package core

import (
	"fmt"
	"time"

	"fidr/internal/bufpool"
	"fidr/internal/engine"
	"fidr/internal/fingerprint"
	"fidr/internal/hostmodel"
	"fidr/internal/lanes"
	"fidr/internal/nic"
	"fidr/internal/pcie"
)

// Write ingests one client write. Under fixed chunking data must be
// exactly one chunk and lba addresses it; under CDC data is a stream
// segment beginning at absolute stream byte offset lba, and the server
// cuts it into content-defined chunks addressed by their extents. Either
// way the data is buffered (host memory for the baseline, NIC memory for
// FIDR) and processed when a full accelerator batch accumulates.
func (s *Server) Write(lba uint64, data []byte) error {
	return s.WriteTraced(lba, data, nil)
}

// WriteTraced is Write with a front-end trace context: spans the caller
// already measured (async queue wait, cluster routing) join this
// request's trace and stage histograms. tc may be nil.
func (s *Server) WriteTraced(lba uint64, data []byte, tc *TraceContext) error {
	if err := s.failIfCrashed(); err != nil {
		return err
	}
	if s.chunker == nil && len(data) != s.cfg.ChunkSize {
		return fmt.Errorf("core: write of %d bytes, chunk size is %d", len(data), s.cfg.ChunkSize)
	}
	if s.chunker != nil && len(data) == 0 {
		return fmt.Errorf("core: empty stream write")
	}
	s.stats.ClientWrites++
	s.stats.ClientBytes += uint64(len(data))
	s.stats.LogicalWriteBytes += uint64(len(data))
	s.ledger.Client(uint64(len(data)))
	s.ledger.CPU(hostmodel.CompProtocol, s.costs.ProtocolWriteNs)
	s.rcache.invalidate(lba)
	s.latency.observe(LatWriteAck, s.cfg.Arch, 0)
	s.chargeTenant(true)
	s.obs.onWrite(len(data))
	tr := s.obs.begin("write", lba)
	tr.adopt(tc)
	defer tr.done()
	s.activeReq = tr
	defer func() { s.activeReq = nil }()

	if s.chunker != nil {
		if s.cfg.Arch == Baseline {
			return s.baselineStreamWrite(lba, data, tr)
		}
		return s.fidrStreamWrite(lba, data, tr)
	}
	if s.cfg.Arch == Baseline {
		return s.baselineWrite(lba, data, tr)
	}
	return s.fidrWrite(lba, data, tr)
}

// Flush processes any partial batch and pushes sealed containers to the
// data SSDs. Call at end of workload (and before relying on SSD-resident
// state).
func (s *Server) Flush() error {
	if err := s.failIfCrashed(); err != nil {
		return err
	}
	var err error
	switch s.cfg.Arch {
	case Baseline:
		err = s.processBaselineBatch()
	default:
		err = s.processFIDRBatch()
	}
	if err != nil {
		return err
	}
	s.comp.Flush()
	tr := s.obs.begin("flush", 0)
	defer tr.done()
	return s.writeSealed(tr)
}

// --- Baseline (extended CIDR, §2.3) ---

func (s *Server) baselineWrite(lba uint64, data []byte, tr *ReqTrace) error {
	// NIC DMA-writes the client data into the host request buffer.
	from := tr.start()
	s.pnic.ReceiveWrite(data)
	s.transfer(devNIC, pcie.HostMemory, uint64(len(data)))
	s.ledger.MemPayload(hostmodel.PathNICHost, uint64(len(data)))
	s.ledger.CPU(hostmodel.CompDMAMgmt, s.costs.DMAMgmtPerChunkNs)

	cp := bufpool.Get(len(data))
	copy(cp, data)
	s.batch = append(s.batch, pending{lba: lba, data: cp, tenant: s.tenant})
	tr.span(StageNICBuffer, from)
	if len(s.batch) >= s.cfg.BatchChunks {
		return s.processBaselineBatch()
	}
	return nil
}

// processBaselineBatch runs the §2.3 write flow over the buffered batch.
func (s *Server) processBaselineBatch() error {
	if len(s.batch) == 0 {
		return nil
	}
	batch := s.batch
	s.batch = nil
	s.stats.BatchesProcessed++
	s.obs.onBatch()
	bt := s.obs.beginLinked("batch", batch[0].lba, s.activeReq)
	defer bt.done()

	// 1. The unique-chunk predictor reads the buffered data and guesses
	// which chunks are unique; the batch scheduler groups accordingly.
	from := bt.start()
	for i := range batch {
		batch[i].predictedUnique = s.pred.Predict(batch[i].data)
		s.ledger.CPU(hostmodel.CompBatchSched, s.costs.BatchSchedPerChunkNs)
	}
	bt.span(StageDedupLookup, from)

	// 2. One-time transfer of the whole batch to the FPGA array.
	var total uint64
	for i := range batch {
		total += uint64(len(batch[i].data))
	}
	s.transfer(pcie.HostMemory, devFPGA, total)
	s.ledger.MemPayload(hostmodel.PathHostFPGA, total)
	for range batch {
		s.ledger.CPU(hostmodel.CompDMAMgmt, s.costs.DMAMgmtPerChunkNs)
	}

	// 3. FPGA: the hash-core array fingerprints every chunk, fanning the
	// batch across the configured hash lanes; the compression-pipeline
	// array then compresses the predicted-unique chunks. Compressed
	// results alias engine scratch, which stays valid until the next
	// CompressMany call — every Pack in this batch happens before that.
	type result struct {
		fp    fingerprint.FP
		cdata []byte
	}
	results := make([]result, len(batch))
	var backBytes uint64
	t0 := bt.start()
	lanes.Run(len(batch), lanes.Clamp(s.cfg.HashLanes, len(batch)), func(_, i int) {
		results[i].fp = fingerprint.Of(batch[i].data)
	})
	bt.add(StageHash, bt.since(t0))
	if err := s.crashPoint(CrashPostHash); err != nil {
		return err
	}
	backBytes += uint64(len(batch)) * fingerprint.Size
	var predIdx []int
	for i := range batch {
		if batch[i].predictedUnique {
			predIdx = append(predIdx, i)
		}
	}
	var compDur time.Duration
	if len(predIdx) > 0 {
		datas := make([][]byte, len(predIdx))
		for j, i := range predIdx {
			datas[j] = batch[i].data
		}
		t1 := bt.start()
		rs, err := s.comp.CompressMany(datas)
		if err != nil {
			return err
		}
		compDur += bt.since(t1)
		for j, i := range predIdx {
			results[i].cdata = rs[j].Data
			backBytes += uint64(len(rs[j].Data))
		}
	}
	// 4. Hashes and compressed predicted-uniques return to host memory.
	s.transfer(devFPGA, pcie.HostMemory, backBytes)
	s.ledger.MemPayload(hostmodel.PathHostFPGA, backBytes)
	if err := s.crashPoint(CrashPrePack); err != nil {
		return err
	}

	// 5. Software table management validates predictions against the
	// Hash-PBN table cache. Misprediction repair compresses inline; that
	// time is charged to the compress span, not the lookup span.
	from = bt.start()
	compBefore := compDur
	for i := range batch {
		p := &batch[i]
		r := &results[i]
		s.cache.SetTenant(p.tenant)
		pbn, found, err := s.cache.Lookup(r.fp)
		if err != nil {
			return err
		}
		s.pred.Confirm(p.predictedUnique, !found)
		if found {
			// Duplicate: only the LBA-PBA table is updated. A
			// wastefully compressed copy (false unique) is dropped.
			s.ledger.CPU(hostmodel.CompLBATable, s.costs.LBATablePerOpNs)
			if err := s.lba.MapLBA(p.lba, pbn); err != nil {
				return err
			}
			s.walMapLBA(p.lba, pbn)
			s.stats.DuplicateChunks++
			s.stats.DedupSavedBytes += uint64(len(p.data))
			s.obs.onDup(uint64(len(p.data)))
			continue
		}
		if r.cdata == nil {
			// Misprediction: a unique chunk was predicted duplicate
			// and skipped compression; it takes another round trip
			// through the FPGA array.
			s.stats.Mispredictions++
			s.obs.onMisprediction()
			s.transfer(pcie.HostMemory, devFPGA, uint64(len(p.data)))
			s.ledger.MemPayload(hostmodel.PathHostFPGA, uint64(len(p.data)))
			t0 := bt.start()
			cdata, _, err := s.comp.Compress(p.data)
			if err != nil {
				return err
			}
			compDur += bt.since(t0)
			r.cdata = cdata
			s.transfer(devFPGA, pcie.HostMemory, uint64(len(cdata)))
			s.ledger.MemPayload(hostmodel.PathHostFPGA, uint64(len(cdata)))
			s.ledger.CPU(hostmodel.CompDMAMgmt, s.costs.DMAMgmtPerChunkNs)
		}
		if err := s.admitUnique(p.lba, r.fp, r.cdata, len(p.data)); err != nil {
			return err
		}
	}
	bt.add(StageDedupLookup, bt.since(from)-(compDur-compBefore))
	bt.add(StageCompress, compDur)
	if err := s.writeSealed(bt); err != nil {
		return err
	}
	// All chunk bytes are packed (containers copy) or dropped; recycle
	// the batch's host buffers.
	for i := range batch {
		bufpool.Put(batch[i].data)
	}
	return nil
}

// --- FIDR (§5.3) ---

func (s *Server) fidrWrite(lba uint64, data []byte, tr *ReqTrace) error {
	// Step 1: buffer in the NIC's battery-backed memory; the client is
	// acked immediately. No host resources are touched.
	from := tr.start()
	if err := s.fnic.BufferWrite(lba, data); err == nic.ErrBufferFull {
		tr.span(StageNICBuffer, from)
		if perr := s.processFIDRBatch(); perr != nil {
			return perr
		}
		from = tr.start()
		err = s.fnic.BufferWrite(lba, data)
		if err != nil {
			return err
		}
		tr.span(StageNICBuffer, from)
	} else if err != nil {
		return err
	} else {
		tr.span(StageNICBuffer, from)
	}
	s.fidrTenants = append(s.fidrTenants, s.tenant)
	if s.fnic.Buffered() >= s.cfg.BatchChunks {
		return s.processFIDRBatch()
	}
	return nil
}

// fidrStreamWrite runs the CDC write flow (§5.3 with in-NIC chunking):
// the NIC's skip-ahead chunker cuts the segment into content-defined
// chunks and buffers each under its extent address (absolute stream byte
// offset). When the in-NIC buffer fills mid-segment the pending batch is
// processed and the stream resumes at the last buffered boundary — the
// chunker's boundary rule depends only on bytes at and after a boundary,
// so the resumed call reproduces the remaining cuts exactly.
func (s *Server) fidrStreamWrite(offset uint64, data []byte, tr *ReqTrace) error {
	for len(data) > 0 {
		from := tr.start()
		before := s.fnic.Buffered()
		n, err := s.fnic.BufferStream(offset, data)
		for i := before; i < s.fnic.Buffered(); i++ {
			s.fidrTenants = append(s.fidrTenants, s.tenant)
		}
		tr.span(StageNICBuffer, from)
		offset += uint64(n)
		data = data[n:]
		switch {
		case err == nic.ErrBufferFull:
			if n == 0 && before == 0 {
				// Cannot happen: Validate sizes the buffer for several
				// Max-size chunks. Guard against spinning anyway.
				return fmt.Errorf("core: chunk exceeds NIC buffer capacity")
			}
			if perr := s.processFIDRBatch(); perr != nil {
				return perr
			}
		case err != nil:
			return err
		}
	}
	if s.fnic.Buffered() >= s.cfg.BatchChunks {
		return s.processFIDRBatch()
	}
	return nil
}

// baselineStreamWrite chunks the segment in host software (the baseline
// NIC DMA-writes raw bytes; it has no chunker) and feeds each
// content-defined chunk through the §2.3 write flow under its extent
// address.
func (s *Server) baselineStreamWrite(offset uint64, data []byte, tr *ReqTrace) error {
	s.cbounds = s.chunker.AppendBoundaries(s.cbounds[:0], data)
	prev := 0
	for _, b := range s.cbounds {
		if err := s.baselineWrite(offset+uint64(prev), data[prev:b], tr); err != nil {
			return err
		}
		prev = b
	}
	return nil
}

// processFIDRBatch runs the §5.3 write flow (steps 2-10).
func (s *Server) processFIDRBatch() error {
	if s.fnic.Buffered() == 0 {
		return nil
	}
	s.stats.BatchesProcessed++
	s.obs.onBatch()
	bt := s.obs.beginLinked("batch", 0, s.activeReq)
	defer bt.done()

	// Step 2: NIC hash cores fingerprint the batch; only the hash
	// values cross PCIe into host memory.
	from := bt.start()
	entries := s.fnic.HashAll()
	bt.span(StageHash, from)
	if err := s.crashPoint(CrashPostHash); err != nil {
		return err
	}
	hashBytes := uint64(len(entries)) * fingerprint.Size
	s.transfer(devNIC, pcie.HostMemory, hashBytes)
	s.ledger.Mem(hostmodel.PathNICHost, hashBytes)
	s.ledger.CPU(hostmodel.CompDMAMgmt, s.costs.DMAMgmtPerBatchNs)
	for range entries {
		s.ledger.CPU(hostmodel.CompDeviceMgr, s.costs.DeviceMgrPerChunkNs)
	}

	// Step 3: the device manager sends bucket indexes to the Cache
	// HW-Engine (full FIDR only; with software caching this stays on
	// the host).
	if s.cfg.Arch == FIDRFull {
		s.transfer(pcie.HostMemory, devCacheHW, uint64(len(entries))*8)
		s.transfer(devCacheHW, pcie.HostMemory, uint64(len(entries))*8)
	}

	// Steps 4-5: host software scans the cached buckets and determines
	// uniqueness; duplicates update only the LBA-PBA table.
	tenants := s.fidrTenants
	s.fidrTenants = nil
	tenantAt := func(i int) string {
		if i < len(tenants) {
			return tenants[i]
		}
		return ""
	}
	from = bt.start()
	flags := make([]bool, len(entries))
	dupPBN := make([]uint64, len(entries))
	// Within-batch duplicates: the first occurrence claims uniqueness;
	// later identical chunks must see it. firstClaim indexes claimed
	// fingerprints so the scan stays O(batch) instead of O(batch²).
	firstClaim := make(map[fingerprint.FP]struct{}, len(entries))
	for i, e := range entries {
		s.cache.SetTenant(tenantAt(i))
		pbn, found, err := s.cache.Lookup(e.FP)
		if err != nil {
			return err
		}
		switch {
		case found:
			dupPBN[i] = pbn
		default:
			if _, claimed := firstClaim[e.FP]; claimed {
				dupPBN[i] = provisionalPBN
			} else {
				flags[i] = true
				firstClaim[e.FP] = struct{}{}
			}
		}
	}

	bt.span(StageDedupLookup, from)

	// Step 6: uniqueness flags return to the NIC.
	s.transfer(pcie.HostMemory, devNIC, uint64(len(entries)))
	s.ledger.Mem(hostmodel.PathNICHost, uint64(len(entries)))

	// Step 7: the NIC's compression scheduler builds a batch of unique
	// chunks and sends it peer-to-peer to the Compression Engine.
	unique, err := s.fnic.ScheduleBatch(flags)
	if err != nil {
		return err
	}
	var uniqueBytes uint64
	for i := range unique {
		uniqueBytes += uint64(len(unique[i].Data))
	}
	s.transfer(devNIC, devComp, uniqueBytes)

	// Step 8: the engine compresses and packs; only metadata reaches
	// the host. uniqueTenants aligns with unique (ScheduleBatch
	// preserves buffer order).
	var uniqueTenants []string
	for i, isUnique := range flags {
		if isUnique {
			uniqueTenants = append(uniqueTenants, tenantAt(i))
		}
	}
	from = bt.start()
	fpToPBN := make(map[fingerprint.FP]uint64, len(unique))
	if len(unique) > 0 {
		// The compression-pipeline array runs the whole unique batch
		// across the configured lanes; packing and table updates then
		// commit strictly in batch order, so containers and ledgers are
		// byte-identical at any lane count.
		datas := make([][]byte, len(unique))
		for i := range unique {
			datas[i] = unique[i].Data
		}
		rs, err := s.comp.CompressMany(datas)
		if err != nil {
			return err
		}
		if err := s.crashPoint(CrashPrePack); err != nil {
			return err
		}
		for ui, u := range unique {
			s.cache.SetTenant(uniqueTenants[ui])
			meta, err := s.comp.Pack(u.LBA, u.FP, rs[ui].Data, len(u.Data))
			if err != nil {
				return err
			}
			pbn, err := s.recordUnique(meta)
			if err != nil {
				return err
			}
			fpToPBN[u.FP] = pbn
		}
		// Pack copied every chunk into a container; the NIC buffer
		// memory handed over by ScheduleBatch is recycled here.
		for i := range unique {
			bufpool.Put(unique[i].Data)
		}
	}
	bt.span(StageCompress, from)
	metaBytes := uint64(len(unique)) * 16
	s.transfer(devComp, pcie.HostMemory, metaBytes)
	s.ledger.Mem(hostmodel.PathHostFPGA, metaBytes)

	// Apply LBA mappings strictly in request order so that a later
	// write to an LBA (unique or duplicate) wins over an earlier one in
	// the same batch.
	for i, e := range entries {
		var pbn uint64
		switch {
		case flags[i]:
			p, ok := fpToPBN[e.FP]
			if !ok {
				return fmt.Errorf("core: unique chunk %v was not admitted", e.FP)
			}
			pbn = p
		case dupPBN[i] == provisionalPBN:
			p, ok := fpToPBN[e.FP]
			if !ok {
				return fmt.Errorf("core: within-batch duplicate of %v lost its unique twin", e.FP)
			}
			pbn = p
			s.stats.DuplicateChunks++
			s.stats.DedupSavedBytes += uint64(e.Size)
			s.obs.onDup(uint64(e.Size))
		default:
			pbn = dupPBN[i]
			s.stats.DuplicateChunks++
			s.stats.DedupSavedBytes += uint64(e.Size)
			s.obs.onDup(uint64(e.Size))
		}
		s.ledger.CPU(hostmodel.CompLBATable, s.costs.LBATablePerOpNs)
		if err := s.lba.MapLBA(e.LBA, pbn); err != nil {
			return err
		}
		// Log every mapping — including ones AppendChunk already
		// created — so replay reproduces same-LBA ordering exactly (a
		// duplicate followed by a unique write of the same LBA must
		// replay in that order).
		s.walMapLBA(e.LBA, pbn)
	}

	// Steps 9-10: sealed containers go engine -> data SSD peer-to-peer.
	return s.writeSealed(bt)
}

// provisionalPBN marks a within-batch duplicate whose unique twin has not
// been admitted yet.
const provisionalPBN = ^uint64(0)

// admitUnique packs an already-compressed unique chunk (baseline path:
// compressed data sits in host memory) and records its metadata.
func (s *Server) admitUnique(lba uint64, fp fingerprint.FP, cdata []byte, rawSize int) error {
	meta, err := s.comp.Pack(lba, fp, cdata, rawSize)
	if err != nil {
		return err
	}
	_, err = s.recordUnique(meta)
	return err
}

// recordUnique updates the LBA-PBA table and the Hash-PBN cache for a
// newly packed unique chunk, returning its PBN.
func (s *Server) recordUnique(meta engine.ChunkMeta) (uint64, error) {
	s.ledger.CPU(hostmodel.CompLBATable, s.costs.LBATablePerOpNs)
	pbn, err := s.lba.AppendChunk(meta.LBA, meta.Container, meta.Offset, meta.CSize)
	if err != nil {
		return 0, err
	}
	if err := s.cache.Insert(meta.FP, pbn); err != nil {
		return 0, err
	}
	for uint64(len(s.pbnFP)) <= pbn {
		s.pbnFP = append(s.pbnFP, fingerprint.FP{})
	}
	s.pbnFP[pbn] = meta.FP
	for uint64(len(s.pbnRaw)) <= pbn {
		s.pbnRaw = append(s.pbnRaw, 0)
	}
	s.pbnRaw[pbn] = uint32(meta.RawSize)
	s.walAppend(meta, pbn)
	s.fpLive++
	s.stats.UniqueChunks++
	s.stats.StoredBytes += uint64(meta.CSize)
	compSaved := uint64(meta.RawSize - meta.CSize)
	s.stats.CompressionSavedBytes += compSaved
	s.obs.onUnique(uint64(meta.CSize), compSaved)
	return pbn, nil
}

// writeSealed pushes sealed containers to the data SSDs. The baseline
// holds container data in host memory (the SSD DMA-reads it out); FIDR
// transfers engine -> SSD peer-to-peer under the switch.
func (s *Server) writeSealed(tr *ReqTrace) error {
	defer s.syncCapacityGauges()
	sealed := s.comp.TakeSealed()
	if len(sealed) > 0 {
		from := tr.start()
		for _, sc := range sealed {
			off := sc.Index * uint64(len(sc.Data))
			if err := s.dataSSD.Write(off, sc.Data); err != nil {
				return err
			}
			if err := s.crashPoint(CrashMidContainerFlush); err != nil {
				return err
			}
			n := uint64(len(sc.Data))
			if s.cfg.Arch == Baseline {
				s.transfer(pcie.HostMemory, devDataSSD, n)
				s.ledger.MemPayload(hostmodel.PathHostSSD, n)
			} else {
				s.transfer(devComp, devDataSSD, n)
			}
			// Data-SSD queues live in host memory in both architectures;
			// container writes are sequential and batched, so the stack
			// cost is per container, not per chunk.
			s.ledger.CPU(hostmodel.CompDataSSDIO, s.costs.DataSSDPerIONs)
		}
		tr.span(StageSSDIO, from)
	}
	// WAL fsync batching: one commit per batch, after the containers the
	// staged records reference are on the data SSD.
	if s.wal == nil {
		return nil
	}
	from := tr.start()
	err := s.walCommit()
	tr.span(StageWALFsync, from)
	return err
}

// --- WAL glue (no-ops when no WAL is attached) ---

func (s *Server) walAppend(meta engine.ChunkMeta, pbn uint64) {
	if s.wal == nil {
		return
	}
	s.wal.stage(WALRecord{
		Kind: WALAppend, LBA: meta.LBA, PBN: pbn,
		Container: meta.Container, Offset: meta.Offset, CSize: meta.CSize,
		FP: meta.FP,
	}, meta.Container+1)
}

func (s *Server) walMapLBA(lba, pbn uint64) {
	if s.wal == nil {
		return
	}
	s.wal.stage(WALRecord{Kind: WALMapLBA, LBA: lba, PBN: pbn}, 0)
}

func (s *Server) walRelocate(pbn, container uint64, off uint32) {
	if s.wal == nil {
		return
	}
	s.wal.stage(WALRecord{Kind: WALRelocate, PBN: pbn, Container: container, Offset: off}, container+1)
}

func (s *Server) walRetire(container uint64) {
	if s.wal == nil {
		return
	}
	s.wal.stage(WALRecord{Kind: WALRetire, Container: container}, 0)
}

func (s *Server) walDeleteFP(fp fingerprint.FP) {
	if s.wal == nil {
		return
	}
	s.wal.stage(WALRecord{Kind: WALDeleteFP, FP: fp}, 0)
}

func (s *Server) walCommit() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.commit(s.comp.OpenContainer())
}
