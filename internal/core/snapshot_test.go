package core

import (
	"bytes"
	"testing"

	"fidr/internal/blockcomp"
)

func TestSnapshotBasics(t *testing.T) {
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 64; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	id, err := s.CreateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshots(); len(got) != 1 || got[0] != id {
		t.Fatalf("snapshots = %v", got)
	}
	// Snapshot reads match the state at creation.
	for i := uint64(0); i < 64; i++ {
		got, err := s.ReadSnapshot(id, i)
		if err != nil || !bytes.Equal(got, sh.Make(i, 4096)) {
			t.Fatalf("snapshot read %d: %v", i, err)
		}
	}
	if _, err := s.ReadSnapshot(id, 999); err != ErrNotFound {
		t.Fatalf("unmapped snapshot read: %v", err)
	}
	if _, err := s.ReadSnapshot(SnapshotID(404), 1); err == nil {
		t.Fatal("unknown snapshot accepted")
	}
}

func TestSnapshotSurvivesOverwritesAndGC(t *testing.T) {
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 96; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	id, err := s.CreateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite everything, then compact aggressively.
	for i := uint64(0); i < 96; i++ {
		s.Write(i, sh.Make(70000+i, 4096))
	}
	s.Flush()
	if _, err := s.Compact(0); err != nil {
		t.Fatal(err)
	}
	// Live volume sees new data.
	got, err := s.Read(5)
	if err != nil || !bytes.Equal(got, sh.Make(70005, 4096)) {
		t.Fatal("live read wrong after snapshot + overwrite")
	}
	// Snapshot still sees the original data — its references kept the
	// chunks alive through compaction.
	for i := uint64(0); i < 96; i++ {
		got, err := s.ReadSnapshot(id, i)
		if err != nil {
			t.Fatalf("snapshot read %d after GC: %v", i, err)
		}
		if !bytes.Equal(got, sh.Make(i, 4096)) {
			t.Fatalf("snapshot chunk %d corrupted by GC", i)
		}
	}
}

func TestDeleteSnapshotFreesSpace(t *testing.T) {
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 64; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	id, _ := s.CreateSnapshot()
	for i := uint64(0); i < 64; i++ {
		s.Write(i, sh.Make(90000+i, 4096))
	}
	s.Flush()
	// With the snapshot alive, old chunks are referenced: no garbage
	// from them.
	withSnap := s.Garbage().TotalDeadBytes
	if err := s.DeleteSnapshot(id); err != nil {
		t.Fatal(err)
	}
	after := s.Garbage().TotalDeadBytes
	if after <= withSnap {
		t.Fatalf("deleting the snapshot freed nothing: %d -> %d", withSnap, after)
	}
	if err := s.DeleteSnapshot(id); err == nil {
		t.Fatal("double delete accepted")
	}
	if len(s.Snapshots()) != 0 {
		t.Fatal("snapshot list not empty")
	}
}

func TestMultipleSnapshotsIndependent(t *testing.T) {
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	s.Write(1, sh.Make(100, 4096))
	id1, _ := s.CreateSnapshot()
	s.Write(1, sh.Make(200, 4096))
	id2, _ := s.CreateSnapshot()
	s.Write(1, sh.Make(300, 4096))
	s.Flush()

	v1, err := s.ReadSnapshot(id1, 1)
	if err != nil || !bytes.Equal(v1, sh.Make(100, 4096)) {
		t.Fatal("snapshot 1 wrong")
	}
	v2, err := s.ReadSnapshot(id2, 1)
	if err != nil || !bytes.Equal(v2, sh.Make(200, 4096)) {
		t.Fatal("snapshot 2 wrong")
	}
	live, err := s.Read(1)
	if err != nil || !bytes.Equal(live, sh.Make(300, 4096)) {
		t.Fatal("live wrong")
	}
}

func TestSnapshotDedupEfficiency(t *testing.T) {
	// A snapshot must not store any data: unique chunk count is flat.
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 50; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	s.Flush()
	before := s.Stats().UniqueChunks
	if _, err := s.CreateSnapshot(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().UniqueChunks; got != before {
		t.Fatalf("snapshot stored %d chunks", got-before)
	}
}
