package core

import (
	"fmt"
	"sort"
)

// Point-in-time snapshots (extension). Deduplicated storage makes
// snapshots nearly free: a snapshot is a copy of the LBA -> PBN mapping
// with a reference taken on every mapped chunk. Later overwrites of the
// live volume remap live LBAs to new PBNs (implicit copy-on-write), while
// the snapshot's references keep its chunks alive through garbage
// collection and compaction. Snapshots are volatile (not part of
// Checkpoint); persisting them is straightforward follow-on work.

// SnapshotID names a snapshot.
type SnapshotID uint64

// snapshotState is one retained mapping set.
type snapshotState struct {
	mappings map[uint64]uint64
}

// CreateSnapshot captures the live volume's current state. In-flight
// batched writes are flushed first so the snapshot is a crash-consistent
// point in time.
func (s *Server) CreateSnapshot() (SnapshotID, error) {
	if err := s.Flush(); err != nil {
		return 0, err
	}
	tr := s.obs.begin("snapshot", 0)
	defer tr.done()
	from := tr.start()
	m := s.lba.Mappings()
	for _, pbn := range m {
		if err := s.lba.Retain(pbn); err != nil {
			return 0, err
		}
	}
	tr.span(StageLBAResolve, from)
	if s.snapshots == nil {
		s.snapshots = make(map[SnapshotID]*snapshotState)
	}
	s.nextSnapID++
	id := SnapshotID(s.nextSnapID)
	s.snapshots[id] = &snapshotState{mappings: m}
	return id, nil
}

// Snapshots lists existing snapshot ids in creation order.
func (s *Server) Snapshots() []SnapshotID {
	out := make([]SnapshotID, 0, len(s.snapshots))
	for id := range s.snapshots {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadSnapshot returns the chunk at lba as of the snapshot.
func (s *Server) ReadSnapshot(id SnapshotID, lba uint64) ([]byte, error) {
	snap, ok := s.snapshots[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown snapshot %d", id)
	}
	pbn, ok := snap.mappings[lba]
	if !ok {
		return nil, ErrNotFound
	}
	tr := s.obs.begin("snapshot_read", lba)
	defer tr.done()
	from := tr.start()
	pba, err := s.lba.Resolve(pbn)
	if err != nil {
		return nil, err
	}
	tr.span(StageLBAResolve, from)
	cdata, _, err := s.fetchCompressed(pba, tr)
	if err != nil {
		return nil, err
	}
	from = tr.start()
	out, err := s.decomp.Decompress(cdata, s.rawSizeOf(pbn))
	if err != nil {
		return nil, err
	}
	tr.span(StageDecompress, from)
	return out, nil
}

// DeleteSnapshot releases the snapshot's references; chunks it was the
// last holder of become garbage for the next Compact.
func (s *Server) DeleteSnapshot(id SnapshotID) error {
	snap, ok := s.snapshots[id]
	if !ok {
		return fmt.Errorf("core: unknown snapshot %d", id)
	}
	for _, pbn := range snap.mappings {
		if err := s.lba.Release(pbn); err != nil {
			return err
		}
	}
	delete(s.snapshots, id)
	return nil
}
