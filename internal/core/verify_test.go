package core

import (
	"strings"
	"testing"

	"fidr/internal/blockcomp"
)

func TestVerifyCleanVolume(t *testing.T) {
	for _, arch := range []Arch{Baseline, FIDRFull} {
		s := gcServer(t, arch)
		sh := blockcomp.NewShaper(0.5)
		for i := uint64(0); i < 200; i++ {
			s.Write(i, sh.Make(i%60, 4096))
		}
		rep, err := s.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("%v: clean volume failed fsck: %v", arch, rep.Problems)
		}
		if rep.MappingsChecked != 200 || rep.ChunksChecked == 0 {
			t.Fatalf("%v: coverage %d/%d", arch, rep.MappingsChecked, rep.ChunksChecked)
		}
	}
}

func TestVerifyAfterGCAndSnapshots(t *testing.T) {
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 128; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	id, err := s.CreateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 96; i++ {
		s.Write(i, sh.Make(40000+i, 4096))
	}
	s.Flush()
	if _, err := s.Compact(0.2); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("post-GC+snapshot fsck failed: %v", rep.Problems)
	}
	if err := s.DeleteSnapshot(id); err != nil {
		t.Fatal(err)
	}
	rep, _ = s.Verify()
	if !rep.OK() {
		t.Fatalf("post-snapshot-delete fsck failed: %v", rep.Problems)
	}
}

func TestVerifyDetectsMediaCorruption(t *testing.T) {
	s, _, dssd := faultServer(t)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 100; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	s.Flush()
	// Flip bytes in the first stored container behind the server's back.
	page, err := dssd.Read(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		page[i] ^= 0xFF
	}
	if err := dssd.Write(0, page); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("fsck missed silent data corruption")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "mismatch") || strings.Contains(p, "decompress") {
			found = true
		}
	}
	if !found {
		t.Fatalf("corruption reported oddly: %v", rep.Problems)
	}
}
