package core

import (
	"sort"

	"fidr/internal/metrics/events"
)

// Capacity observability plane: the reduction-attribution ledger view,
// per-container heatmap, GC recommendation signal, and the structured
// event journal hookup.
//
// Attribution identity (see Stats): every client write byte lands in
// exactly one bucket, so after a Flush
//
//	LogicalWriteBytes = DedupSavedBytes + CompressionSavedBytes + StoredBytes
//
// holds exactly; on a live server the difference is write payload still
// buffered in the batch pipeline (reported as UnattributedBytes).

// SetEventJournal attaches the structured event journal. group labels
// this server's events when several groups share one journal. If the
// server was built by RecoverServer, the recovery event is emitted
// retroactively here — the journal necessarily attaches after
// construction.
func (s *Server) SetEventJournal(j *events.Journal, group int) {
	s.journal = j
	s.group = group
	if s.recovered && j != nil {
		genesis := int64(0)
		if s.recovery.FromGenesis {
			genesis = 1
		}
		s.emitEvent(events.Event{
			Type: events.TypeRecovery,
			Fields: map[string]int64{
				"from_genesis":      genesis,
				"checkpoint_seq":    int64(s.recovery.CheckpointSeq),
				"replayed_records":  int64(s.recovery.ReplayedRecords),
				"stale_fps_dropped": int64(s.recovery.StaleTableEntriesDropped),
				"orphans_cleared":   int64(s.recovery.OrphanedContainersCleared),
				"live_fingerprints": int64(s.fpLive),
			},
		})
	}
}

// emitEvent stamps the server's group onto ev and appends it to the
// journal; a nil journal disables emission.
func (s *Server) emitEvent(ev events.Event) {
	if s.journal == nil {
		return
	}
	ev.Group = s.group
	s.journal.Append(ev)
}

// syncCapacityGauges pushes the derived capacity gauges into the
// registry. It is called from the write path (batch seal, flush, GC,
// checkpoint), so it reads Server state under the single-writer
// discipline; scrapes see only the resulting registry atomics.
func (s *Server) syncCapacityGauges() {
	if s.obs == nil {
		return
	}
	var totalDead uint64
	for _, b := range s.lba.DeadBytes() {
		totalDead += b
	}
	live := s.stats.StoredBytes
	if drop := totalDead + s.stats.ReclaimedDeadBytes; drop < live {
		live -= drop
	} else {
		live = 0
	}
	s.obs.capGarbage.Set(float64(totalDead))
	s.obs.capLive.Set(float64(live))
	s.obs.capFPLive.Set(float64(s.fpLive))
	s.obs.capContainers.Set(float64(s.lba.NextContainer()))
	s.obs.capRetired.Set(float64(s.lba.RetiredContainers()))
	s.obs.capOpenBytes.Set(float64(s.comp.OpenBytes()))
}

// GCAdvice is the compaction recommendation derived from the garbage
// ledger: how many containers currently clear the dead-fraction
// threshold and how many bytes a Compact pass at that threshold would
// reclaim.
type GCAdvice struct {
	Threshold             float64 `json:"threshold"`
	CandidateContainers   int     `json:"candidate_containers"`
	ProjectedReclaimBytes uint64  `json:"projected_reclaim_bytes"`
	Recommended           bool    `json:"recommended"`
}

// CapacityReport is the /capacity view: the reduction-attribution
// ledger, garbage debt, fingerprint-table occupancy, and GC advice.
type CapacityReport struct {
	LogicalWriteBytes     uint64 `json:"logical_write_bytes"`
	DedupSavedBytes       uint64 `json:"dedup_saved_bytes"`
	CompressionSavedBytes uint64 `json:"compression_saved_bytes"`
	StoredBytes           uint64 `json:"stored_bytes"`
	// UnattributedBytes is write payload counted in LogicalWriteBytes
	// but still buffered ahead of the batch pipeline — the live-server
	// slack in the attribution identity. Zero after a Flush.
	UnattributedBytes uint64 `json:"unattributed_bytes"`
	// OpenContainerBytes are stored bytes packed into the open
	// container but not yet sealed to the data SSDs.
	OpenContainerBytes uint64  `json:"open_container_bytes"`
	ReductionRatio     float64 `json:"reduction_ratio"`

	GarbageBytes       uint64 `json:"garbage_bytes"`
	LiveBytes          uint64 `json:"live_bytes"`
	ReclaimedDeadBytes uint64 `json:"reclaimed_dead_bytes"`

	FPLive              uint64  `json:"fp_live"`
	FPCapacity          uint64  `json:"fp_capacity"`
	FPOccupancy         float64 `json:"fp_occupancy"`
	DeletedFingerprints uint64  `json:"deleted_fingerprints"`

	Containers        uint64 `json:"containers"`
	RetiredContainers int    `json:"retired_containers"`

	GC GCAdvice `json:"gc"`
}

// CapacityReport builds the capacity view using threshold as the GC
// dead-fraction reference. Must run on the goroutine that owns the
// server (the async worker routes maintenance ops there); the lbatable
// reads are lock-protected but the ledger fields are single-writer.
func (s *Server) CapacityReport(threshold float64) CapacityReport {
	r := CapacityReport{
		LogicalWriteBytes:     s.stats.LogicalWriteBytes,
		DedupSavedBytes:       s.stats.DedupSavedBytes,
		CompressionSavedBytes: s.stats.CompressionSavedBytes,
		StoredBytes:           s.stats.StoredBytes,
		OpenContainerBytes:    uint64(s.comp.OpenBytes()),
		ReclaimedDeadBytes:    s.stats.ReclaimedDeadBytes,
		DeletedFingerprints:   s.stats.DeletedFingerprints,
		FPLive:                s.fpLive,
		FPCapacity:            s.cfg.UniqueChunkCapacity,
		Containers:            s.lba.NextContainer(),
		RetiredContainers:     s.lba.RetiredContainers(),
	}
	if attributed := r.DedupSavedBytes + r.CompressionSavedBytes + r.StoredBytes; r.LogicalWriteBytes > attributed {
		r.UnattributedBytes = r.LogicalWriteBytes - attributed
	}
	if denom := r.StoredBytes + r.UnattributedBytes; r.LogicalWriteBytes > 0 && denom > 0 {
		r.ReductionRatio = float64(r.LogicalWriteBytes) / float64(denom)
	}
	if r.FPCapacity > 0 {
		r.FPOccupancy = float64(r.FPLive) / float64(r.FPCapacity)
	}
	for _, b := range s.lba.DeadBytes() {
		r.GarbageBytes += b
	}
	if drop := r.GarbageBytes + r.ReclaimedDeadBytes; drop < r.StoredBytes {
		r.LiveBytes = r.StoredBytes - drop
	}
	r.GC = s.gcAdvice(threshold)
	return r
}

// gcAdvice projects what Compact(threshold) would reclaim right now,
// using the same victim rule as Compact: containers whose dead bytes
// exceed threshold * containerSize, excluding the open container.
func (s *Server) gcAdvice(threshold float64) GCAdvice {
	adv := GCAdvice{Threshold: threshold}
	open := s.comp.OpenContainer()
	for c, dead := range s.lba.DeadBytes() {
		if c == open || dead == 0 || float64(dead)/float64(s.cfg.ContainerSize) < threshold {
			continue
		}
		adv.CandidateContainers++
		adv.ProjectedReclaimBytes += dead
	}
	adv.Recommended = adv.CandidateContainers > 0
	return adv
}

// MergeCapacityReports sums per-group reports into a cluster view:
// byte and count fields add, ratios are re-derived from the sums, and
// the GC advice aggregates (recommended when any group recommends).
// Thresholds are uniform across groups, so the first report's is kept.
func MergeCapacityReports(rs ...CapacityReport) CapacityReport {
	var out CapacityReport
	for i, r := range rs {
		if i == 0 {
			out.GC.Threshold = r.GC.Threshold
		}
		out.LogicalWriteBytes += r.LogicalWriteBytes
		out.DedupSavedBytes += r.DedupSavedBytes
		out.CompressionSavedBytes += r.CompressionSavedBytes
		out.StoredBytes += r.StoredBytes
		out.UnattributedBytes += r.UnattributedBytes
		out.OpenContainerBytes += r.OpenContainerBytes
		out.GarbageBytes += r.GarbageBytes
		out.LiveBytes += r.LiveBytes
		out.ReclaimedDeadBytes += r.ReclaimedDeadBytes
		out.FPLive += r.FPLive
		out.FPCapacity += r.FPCapacity
		out.DeletedFingerprints += r.DeletedFingerprints
		out.Containers += r.Containers
		out.RetiredContainers += r.RetiredContainers
		out.GC.CandidateContainers += r.GC.CandidateContainers
		out.GC.ProjectedReclaimBytes += r.GC.ProjectedReclaimBytes
		out.GC.Recommended = out.GC.Recommended || r.GC.Recommended
	}
	if denom := out.StoredBytes + out.UnattributedBytes; out.LogicalWriteBytes > 0 && denom > 0 {
		out.ReductionRatio = float64(out.LogicalWriteBytes) / float64(denom)
	}
	if out.FPCapacity > 0 {
		out.FPOccupancy = float64(out.FPLive) / float64(out.FPCapacity)
	}
	return out
}

// HeatBucket is one cell of the container heatmap: the containers whose
// dead fraction falls in [DeadFracLo, DeadFracHi) within one age band.
type HeatBucket struct {
	// AgeBand partitions containers by allocation order (the system
	// has no per-container wall-clock timestamps): 0 is the oldest
	// third of the frontier, 2 the youngest.
	AgeBand    int     `json:"age_band"`
	DeadFracLo float64 `json:"dead_frac_lo"`
	DeadFracHi float64 `json:"dead_frac_hi"`
	Containers int     `json:"containers"`
	LiveBytes  uint64  `json:"live_bytes"`
	DeadBytes  uint64  `json:"dead_bytes"`
}

// ContainerHeatmap is the /capacity/containers view.
type ContainerHeatmap struct {
	Containers int          `json:"containers"`
	Retired    int          `json:"retired"`
	LiveBytes  uint64       `json:"live_bytes"`
	DeadBytes  uint64       `json:"dead_bytes"`
	Buckets    []HeatBucket `json:"buckets"`
}

// heatAgeBands is the number of allocation-order age bands.
const heatAgeBands = 3

// heatDeadDeciles buckets dead fraction into tenths.
const heatDeadDeciles = 10

// ContainerHeatmap buckets every allocated container by dead fraction
// (deciles of container capacity) and age band (allocation order).
// Retired containers are counted in Retired but excluded from buckets —
// their space is reclaimed, not garbage. Bucket DeadBytes sum to the
// garbage ledger total, the invariant check-capacity asserts.
func (s *Server) ContainerHeatmap() ContainerHeatmap {
	usage := s.lba.ContainerUsage()
	hm := ContainerHeatmap{Containers: len(usage)}
	if len(usage) == 0 {
		return hm
	}
	cs := float64(s.lba.ContainerSize())
	buckets := make(map[[2]int]*HeatBucket)
	for _, u := range usage {
		if u.Retired {
			hm.Retired++
			continue
		}
		hm.LiveBytes += u.LiveBytes
		hm.DeadBytes += u.DeadBytes
		band := int(u.Container) * heatAgeBands / len(usage)
		if band >= heatAgeBands {
			band = heatAgeBands - 1
		}
		dec := int(float64(u.DeadBytes) / cs * heatDeadDeciles)
		if dec >= heatDeadDeciles {
			dec = heatDeadDeciles - 1
		}
		key := [2]int{band, dec}
		b := buckets[key]
		if b == nil {
			b = &HeatBucket{
				AgeBand:    band,
				DeadFracLo: float64(dec) / heatDeadDeciles,
				DeadFracHi: float64(dec+1) / heatDeadDeciles,
			}
			buckets[key] = b
		}
		b.Containers++
		b.LiveBytes += u.LiveBytes
		b.DeadBytes += u.DeadBytes
	}
	hm.Buckets = make([]HeatBucket, 0, len(buckets))
	for _, b := range buckets {
		hm.Buckets = append(hm.Buckets, *b)
	}
	sort.Slice(hm.Buckets, func(i, j int) bool {
		if hm.Buckets[i].AgeBand != hm.Buckets[j].AgeBand {
			return hm.Buckets[i].AgeBand < hm.Buckets[j].AgeBand
		}
		return hm.Buckets[i].DeadFracLo < hm.Buckets[j].DeadFracLo
	})
	return hm
}

// MergeHeatmaps combines per-group heatmaps cell-wise (same age band
// and dead-fraction decile merge; counts and bytes add).
func MergeHeatmaps(hs ...ContainerHeatmap) ContainerHeatmap {
	var out ContainerHeatmap
	cells := make(map[[2]int]*HeatBucket)
	for _, h := range hs {
		out.Containers += h.Containers
		out.Retired += h.Retired
		out.LiveBytes += h.LiveBytes
		out.DeadBytes += h.DeadBytes
		for _, b := range h.Buckets {
			key := [2]int{b.AgeBand, int(b.DeadFracLo * heatDeadDeciles)}
			c := cells[key]
			if c == nil {
				cp := b
				cells[key] = &cp
				continue
			}
			c.Containers += b.Containers
			c.LiveBytes += b.LiveBytes
			c.DeadBytes += b.DeadBytes
		}
	}
	out.Buckets = make([]HeatBucket, 0, len(cells))
	for _, c := range cells {
		out.Buckets = append(out.Buckets, *c)
	}
	sort.Slice(out.Buckets, func(i, j int) bool {
		if out.Buckets[i].AgeBand != out.Buckets[j].AgeBand {
			return out.Buckets[i].AgeBand < out.Buckets[j].AgeBand
		}
		return out.Buckets[i].DeadFracLo < out.Buckets[j].DeadFracLo
	})
	return out
}
