package core

import (
	"time"

	"fidr/internal/metrics"
)

// Per-request latency sampling. Unlike the §7.6 budget model (latency.go),
// which prices the *architecture*, the tracker prices each request from
// what actually happened to it: an in-NIC buffer hit costs a NIC
// turnaround; a read served from the open container skips flash; an SSD
// read pays the device's size-dependent access time plus the
// architecture's hop count. The distributions expose tail behaviour the
// single-point model cannot.

// LatencyKind buckets request outcomes.
type LatencyKind int

const (
	// LatWriteAck is the client-visible write commit.
	LatWriteAck LatencyKind = iota
	// LatReadNICHit is a read served from the in-NIC write buffer.
	LatReadNICHit
	// LatReadCacheHit is a read served from the hot-block read cache.
	LatReadCacheHit
	// LatReadPending is a read served from the engine's open container.
	LatReadPending
	// LatReadSSD is a read that reached the data SSDs.
	LatReadSSD

	numLatencyKinds
)

// String implements fmt.Stringer.
func (k LatencyKind) String() string {
	switch k {
	case LatWriteAck:
		return "write ack"
	case LatReadNICHit:
		return "read (NIC buffer hit)"
	case LatReadCacheHit:
		return "read (host cache hit)"
	case LatReadPending:
		return "read (open container)"
	case LatReadSSD:
		return "read (SSD)"
	default:
		return "unknown"
	}
}

// slug returns the kind's metric-name component.
func (k LatencyKind) slug() string {
	switch k {
	case LatWriteAck:
		return "write_ack"
	case LatReadNICHit:
		return "read_nic_hit"
	case LatReadCacheHit:
		return "read_cache_hit"
	case LatReadPending:
		return "read_pending"
	case LatReadSSD:
		return "read_ssd"
	default:
		return "unknown"
	}
}

// latencyTracker accumulates per-kind distributions in bounded
// histograms (constant memory over arbitrarily long runs; mean and max
// exact, percentiles log-bucket estimates). EnableObservability rebinds
// the histograms into the live registry under "latency.<kind>.ns".
type latencyTracker struct {
	params LatencyParams
	hist   [numLatencyKinds]*metrics.Histogram
}

func newLatencyTracker(params LatencyParams) latencyTracker {
	lt := latencyTracker{params: params}
	for k := range lt.hist {
		lt.hist[k] = metrics.NewHistogram()
	}
	return lt
}

// observe records one request of the given kind with an extra
// device-dependent component (e.g. measured SSD access time).
func (lt *latencyTracker) observe(kind LatencyKind, arch Arch, device time.Duration) {
	p := lt.params
	var d time.Duration
	switch kind {
	case LatWriteAck:
		d = p.BufferAck
	case LatReadNICHit:
		d = p.NICSend
	case LatReadCacheHit:
		d = p.NICSend + p.PerHop // host memory -> NIC -> client
	case LatReadPending:
		// No flash access; the engine already holds the data.
		d = p.HostSoftware + p.Decompress + p.NICSend + p.PerHop
	case LatReadSSD:
		hops := 2 * p.PerHop
		wait := p.BatchWait
		if arch == Baseline {
			hops = 4 * p.PerHop
			wait = 2 * p.BatchWait
		}
		d = p.HostSoftware + hops + p.Decompress + p.NICSend + wait + device
	}
	lt.hist[kind].Observe(float64(d.Nanoseconds()))
}

// LatencyStats exposes one kind's distribution.
type LatencyStats struct {
	Kind  LatencyKind
	Count int
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// LatencyReport returns the distributions observed so far, one entry per
// kind with at least one sample.
func (s *Server) LatencyReport() []LatencyStats {
	var out []LatencyStats
	for k := LatencyKind(0); k < numLatencyKinds; k++ {
		h := s.latency.hist[k]
		if h.Count() == 0 {
			continue
		}
		out = append(out, LatencyStats{
			Kind:  k,
			Count: int(h.Count()),
			Mean:  time.Duration(h.Mean()),
			P50:   time.Duration(h.Quantile(0.50)),
			P99:   time.Duration(h.Quantile(0.99)),
			Max:   time.Duration(h.Max()),
		})
	}
	return out
}
