package core

import (
	"bytes"
	"math/rand"
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/engine"
	"fidr/internal/nic"
)

// TestWithinBatchAllDuplicates is the satellite regression for the
// within-batch duplicate scan: a batch that is 100% copies of one chunk
// must admit exactly one unique chunk and resolve every other write to
// it, at any batch size (the old O(n²) scan is gone; semantics must
// hold).
func TestWithinBatchAllDuplicates(t *testing.T) {
	for _, arch := range []Arch{FIDRNicP2P, FIDRFull} {
		cfg := DefaultConfig(arch)
		cfg.BatchChunks = 128
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data := blockcomp.NewShaper(0.5).Make(42, 4096)
		const n = 128
		for i := uint64(0); i < n; i++ {
			if err := s.Write(i, data); err != nil {
				t.Fatalf("%v write %d: %v", arch, i, err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.UniqueChunks != 1 {
			t.Fatalf("%v: %d unique chunks for an all-duplicate batch, want 1", arch, st.UniqueChunks)
		}
		if st.DuplicateChunks != n-1 {
			t.Fatalf("%v: %d duplicates, want %d", arch, st.DuplicateChunks, n-1)
		}
		for i := uint64(0); i < n; i += 17 {
			got, err := s.Read(i)
			if err != nil {
				t.Fatalf("%v read %d: %v", arch, i, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%v: LBA %d read back wrong bytes", arch, i)
			}
		}
	}
}

// laneOutcome is every comparable output of one workload run.
type laneOutcome struct {
	server Stats
	engine engine.Stats
	nic    nic.Stats
	hits   uint64
}

// laneRun drives one server through a fixed mixed workload, verifies
// read-back integrity, and returns the run's observable outcome.
func laneRun(t *testing.T, arch Arch, hashLanes, compressLanes int) laneOutcome {
	t.Helper()
	cfg := DefaultConfig(arch)
	cfg.HashLanes = hashLanes
	cfg.CompressLanes = compressLanes
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	want := make(map[uint64][]byte)
	for i := 0; i < 600; i++ {
		lba := uint64(rng.Intn(300))
		seed := uint64(rng.Intn(120)) // heavy duplication
		ratio := 0.5
		if seed%9 == 0 {
			ratio = 1.0 // raw-fallback chunks exercise that path too
		}
		data := blockcomp.NewShaper(ratio).Make(seed, 4096)
		if err := s.Write(lba, data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		want[lba] = data
		if i%37 == 0 && len(want) > 0 {
			if _, err := s.Read(lba); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for lba, data := range want {
		got, err := s.Read(lba)
		if err != nil {
			t.Fatalf("final read %d: %v", lba, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("LBA %d corrupt", lba)
		}
	}
	return laneOutcome{
		server: s.Stats(),
		engine: s.EngineStats(),
		nic:    s.NICStats(),
		hits:   s.CacheStats().Hits,
	}
}

// TestLaneCountDeterminism is the tentpole invariant at server scope:
// the same workload at 1, 2 and 8 hash/compress lanes yields identical
// server stats, identical accelerator stats and identical stored bytes.
func TestLaneCountDeterminism(t *testing.T) {
	for _, arch := range []Arch{Baseline, FIDRNicP2P, FIDRFull} {
		ref := laneRun(t, arch, 1, 1)
		for _, n := range []int{2, 8} {
			got := laneRun(t, arch, n, n)
			if got != ref {
				t.Fatalf("%v lanes=%d outcome diverges:\n got %+v\nwant %+v", arch, n, got, ref)
			}
		}
	}
}
