package core

import (
	"bytes"
	"testing"

	"fidr/internal/blockcomp"
)

func TestTenantStatsAccumulate(t *testing.T) {
	cfg := DefaultConfig(FIDRFull)
	cfg.MultiTenant = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := blockcomp.NewShaper(0.5)
	s.SetTenant("alice")
	for i := uint64(0); i < 10; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	s.SetTenant("bob")
	for i := uint64(100); i < 105; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	s.Flush()
	s.SetTenant("alice")
	s.Read(0)
	ts := s.TenantStats()
	if ts["alice"].Writes != 10 || ts["alice"].Reads != 1 {
		t.Fatalf("alice stats %+v", ts["alice"])
	}
	if ts["bob"].Writes != 5 || ts["bob"].Reads != 0 {
		t.Fatalf("bob stats %+v", ts["bob"])
	}
}

// TestMultiTenantCacheProtection reproduces §8's contention scenario end
// to end: a locality-rich tenant shares the server with a unique-content
// scanner. With a high weight, the hot tenant's table-cache hit rate must
// beat its hit rate under plain fair sharing.
func TestMultiTenantCacheProtection(t *testing.T) {
	run := func(multiTenant bool) float64 {
		cfg := DefaultConfig(FIDRFull)
		cfg.MultiTenant = multiTenant
		cfg.UniqueChunkCapacity = 1 << 18
		cfg.CacheLines = 128
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if multiTenant {
			s.SetTenantWeight("hot", 16)
			s.SetTenantWeight("scan", 1)
		}
		sh := blockcomp.NewShaper(0.5)
		// Warm the hot tenant's working set (40 contents).
		s.SetTenant("hot")
		for i := uint64(0); i < 40; i++ {
			s.Write(i, sh.Make(i, 4096))
		}
		s.Flush()
		// Interleave: the scanner pours unique content through the
		// cache while the hot tenant keeps touching its set.
		for round := 0; round < 20; round++ {
			s.SetTenant("scan")
			for j := 0; j < 60; j++ {
				lba := uint64(100000 + round*100 + j)
				s.Write(lba, sh.Make(1_000_000+lba, 4096))
			}
			s.SetTenant("hot")
			for i := uint64(0); i < 40; i += 4 {
				s.Write(1000+i, sh.Make(i, 4096))
			}
		}
		s.Flush()
		// Measurement phase: the hot tenant's hit rate on its set.
		s.SetTenant("hot")
		before := s.CacheStats()
		for i := uint64(0); i < 40; i++ {
			s.Write(2000+i, sh.Make(i, 4096)) // duplicates of the hot set
		}
		s.Flush()
		after := s.CacheStats()
		return float64(after.Hits-before.Hits) / float64(after.Lookups-before.Lookups)
	}
	plain := run(false)
	prioritized := run(true)
	if prioritized <= plain {
		t.Fatalf("prioritized hot-tenant hit rate %.3f not above plain LRU's %.3f", prioritized, plain)
	}
}

func TestMultiTenantDataIntegrity(t *testing.T) {
	cfg := DefaultConfig(FIDRFull)
	cfg.MultiTenant = true
	cfg.CacheLines = 64
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := blockcomp.NewShaper(0.5)
	s.SetTenantWeight("a", 4)
	s.SetTenantWeight("b", 1)
	for i := uint64(0); i < 300; i++ {
		if i%2 == 0 {
			s.SetTenant("a")
		} else {
			s.SetTenant("b")
		}
		if err := s.Write(i, sh.Make(i%90, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	for i := uint64(0); i < 300; i++ {
		got, err := s.Read(i)
		if err != nil || !bytes.Equal(got, sh.Make(i%90, 4096)) {
			t.Fatalf("multi-tenant lba %d broken: %v", i, err)
		}
	}
	rep, err := s.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("multi-tenant fsck: %v %v", err, rep.Problems)
	}
}
