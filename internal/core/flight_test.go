package core

import (
	"strings"
	"testing"
	"time"

	"fidr/internal/blockcomp"
	"fidr/internal/metrics"
)

func TestFlightRecorderCapturesSlowRequests(t *testing.T) {
	s := newServer(t, FIDRFull)
	reg := s.EnableObservability(nil, 16)
	// A 1ns floor makes every request "slow" until the quantile gate
	// warms up, so captures are deterministic.
	s.ConfigureFlightRecorder(0.99, time.Nanosecond, 8)

	sh := blockcomp.NewShaper(0.5)
	for i := 0; i < 20; i++ {
		if err := s.Write(uint64(i), sh.Make(uint64(i), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	slow := s.SlowTraces()
	if len(slow) == 0 {
		t.Fatal("no slow traces captured with a 1ns threshold")
	}
	if len(slow) > 8 {
		t.Fatalf("ring holds %d captures, capacity 8", len(slow))
	}
	for _, st := range slow {
		if st.Threshold <= 0 {
			t.Fatalf("capture %q has no threshold", st.Op)
		}
		if st.Total < st.Threshold {
			t.Fatalf("capture %q total %v below threshold %v", st.Op, st.Total, st.Threshold)
		}
		if st.Queues == nil {
			t.Fatalf("capture %q has no queue snapshot", st.Op)
		}
	}
	// Newest first.
	for i := 1; i < len(slow); i++ {
		if slow[i].Start.After(slow[i-1].Start) {
			t.Fatal("slow traces not newest-first")
		}
	}
	// Queue snapshot keys are occupancy gauges.
	for name := range slow[0].Queues {
		if !strings.Contains(name, "queue") {
			t.Fatalf("queue snapshot contains non-queue gauge %q", name)
		}
	}
	if got := reg.Counter("core.slow_traces").Value(); got != uint64(len(slow)) && got < 8 {
		t.Fatalf("core.slow_traces = %d with %d retained captures", got, len(slow))
	}
	if reg.Gauge("core.slow_threshold_ns").Value() <= 0 {
		t.Fatal("core.slow_threshold_ns not published")
	}
}

func TestFlightRecorderQuantileGate(t *testing.T) {
	reg := metrics.NewRegistry()
	f := newFlightRecorder(reg, 0.9, time.Nanosecond, 4)
	// Warm up with uniform fast requests, then one outlier.
	base := time.Now()
	for i := 0; i < flightWarmup+50; i++ {
		f.observe(Trace{Op: "write", Start: base, Total: 100 * time.Microsecond})
	}
	th := f.currentThreshold()
	if th < 50*time.Microsecond {
		t.Fatalf("warmed threshold %v implausibly low for a 100µs population", th)
	}
	// The warmup population itself filled the ring (floor threshold), so
	// distinguish captures by op: an outlier above the quantile must be
	// captured, a fast request must not be.
	f.observe(Trace{Op: "outlier", Start: base, Total: time.Second})
	if got := f.recent(); len(got) == 0 || got[0].Op != "outlier" {
		t.Fatal("1s outlier not captured after warmup")
	}
	f.observe(Trace{Op: "fast", Start: base, Total: time.Nanosecond})
	if got := f.recent(); got[0].Op != "outlier" {
		t.Fatalf("fast request captured after warmup (newest is %q)", got[0].Op)
	}
}

func TestFlightRecorderDisabledServer(t *testing.T) {
	s := newServer(t, Baseline)
	// No EnableObservability: both must be safe no-ops.
	s.ConfigureFlightRecorder(0.5, time.Nanosecond, 4)
	if got := s.SlowTraces(); got != nil {
		t.Fatalf("SlowTraces on uninstrumented server = %v, want nil", got)
	}
}

func TestRenderSlowTraces(t *testing.T) {
	out := RenderSlowTraces([]SlowTrace{{
		Trace: Trace{
			Op: "write", LBA: 7, Total: 2 * time.Millisecond,
			Spans: []Span{{Stage: StageCompress, Dur: time.Millisecond}},
		},
		Threshold: time.Millisecond,
		Queues:    map[string]float64{"ssd.data.queue_depth": 3},
	}})
	for _, want := range []string{"write", "compress", "ssd.data.queue_depth=3", "1 slow traces"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered slow traces missing %q:\n%s", want, out)
		}
	}
}
