package core

import (
	"bytes"
	"testing"

	"fidr/internal/blockcomp"
)

// gcServer builds a server with small containers so compaction scenarios
// fit in a few hundred writes.
func gcServer(t *testing.T, arch Arch) *Server {
	t.Helper()
	cfg := DefaultConfig(arch)
	cfg.ContainerSize = 64 << 10 // 64 KiB: ~30 compressed chunks each
	cfg.BatchChunks = 16
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGarbageAccumulatesOnOverwrite(t *testing.T) {
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	// Fill several containers with unique content.
	for i := uint64(0); i < 128; i++ {
		if err := s.Write(i, sh.Make(i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if g := s.Garbage(); g.TotalDeadBytes != 0 {
		t.Fatalf("garbage before overwrites: %d", g.TotalDeadBytes)
	}
	// Overwrite half the LBAs with new content: old chunks die.
	for i := uint64(0); i < 64; i++ {
		if err := s.Write(i, sh.Make(10000+i, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	g := s.Garbage()
	if g.TotalDeadBytes == 0 {
		t.Fatal("no garbage after overwriting 64 unique chunks")
	}
	if len(g.DeadBytesByContainer) == 0 {
		t.Fatal("no per-container accounting")
	}
}

func TestCompactReclaimsAndPreservesData(t *testing.T) {
	for _, arch := range []Arch{Baseline, FIDRFull} {
		s := gcServer(t, arch)
		sh := blockcomp.NewShaper(0.5)
		// Write unique chunks, then overwrite most of them.
		for i := uint64(0); i < 128; i++ {
			if err := s.Write(i, sh.Make(i, 4096)); err != nil {
				t.Fatal(err)
			}
		}
		s.Flush()
		for i := uint64(0); i < 128; i++ {
			if i%4 != 0 { // keep every 4th chunk live
				if err := s.Write(i, sh.Make(20000+i, 4096)); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Flush()

		before := s.Garbage().TotalDeadBytes
		if before == 0 {
			t.Fatalf("%v: no garbage to collect", arch)
		}
		res, err := s.Compact(0.25)
		if err != nil {
			t.Fatalf("%v: compact: %v", arch, err)
		}
		if res.ContainersCompacted == 0 || res.BytesReclaimed == 0 {
			t.Fatalf("%v: nothing compacted: %+v", arch, res)
		}
		if res.ChunksMoved == 0 || res.ChunksDropped == 0 {
			t.Fatalf("%v: expected moves and drops: %+v", arch, res)
		}
		if after := s.Garbage().TotalDeadBytes; after >= before {
			t.Fatalf("%v: garbage not reduced: %d -> %d", arch, before, after)
		}
		// Every LBA still reads back its freshest content.
		for i := uint64(0); i < 128; i++ {
			want := sh.Make(i, 4096)
			if i%4 != 0 {
				want = sh.Make(20000+i, 4096)
			}
			got, err := s.Read(i)
			if err != nil {
				t.Fatalf("%v: read %d after compaction: %v", arch, i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%v: LBA %d corrupted by compaction", arch, i)
			}
		}
		if len(s.ReclaimedContainers()) != res.ContainersCompacted {
			t.Fatalf("%v: reclaimed list mismatch", arch)
		}
	}
}

func TestCompactThreshold(t *testing.T) {
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 64; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	s.Flush()
	// Kill just one chunk: dead fraction tiny.
	s.Write(0, sh.Make(9999, 4096))
	s.Flush()
	res, err := s.Compact(0.5) // high threshold: nothing qualifies
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCompacted != 0 {
		t.Fatalf("compacted despite threshold: %+v", res)
	}
}

func TestDedupAfterCompaction(t *testing.T) {
	// After a dead chunk's fingerprint is dropped, rewriting the same
	// content must be treated as unique again — and round-trip.
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	content := sh.Make(777, 4096)
	if err := s.Write(1, content); err != nil {
		t.Fatal(err)
	}
	// Fill out the container so it seals, then kill the chunk.
	for i := uint64(10); i < 60; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	s.Flush()
	s.Write(1, sh.Make(888, 4096))
	s.Flush()
	if _, err := s.Compact(0); err != nil {
		t.Fatal(err)
	}
	// Rewrite the dead content at a new LBA.
	if err := s.Write(2, content); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	got, err := s.Read(2)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("content lost after GC + rewrite: %v", err)
	}
}

func TestLiveChunkRevivedByDedup(t *testing.T) {
	// A chunk whose refcount drops to zero but whose content is written
	// again *before* compaction must be revived, not re-stored.
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	content := sh.Make(42, 4096)
	s.Write(1, content)
	for i := uint64(10); i < 40; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	s.Flush()
	s.Write(1, sh.Make(43, 4096)) // kill
	s.Flush()
	uniqueBefore := s.Stats().UniqueChunks
	s.Write(5, content) // revive via dedup
	s.Flush()
	if got := s.Stats().UniqueChunks; got != uniqueBefore {
		t.Fatalf("revived chunk re-stored as unique (%d -> %d)", uniqueBefore, got)
	}
	got, err := s.Read(5)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatal("revived chunk unreadable")
	}
}
