package core

import (
	"fmt"

	"fidr/internal/hostmodel"
	"fidr/internal/lbatable"
	"fidr/internal/pcie"
)

// ErrNotFound is returned for reads of never-written LBAs.
var ErrNotFound = fmt.Errorf("core: LBA not found")

// Read returns the chunk most recently written at lba (§2.2 / §5.3 read
// flows). Data is served, in priority order, from: the write buffer (NIC
// buffer in FIDR, host batch buffer in the baseline), the engine's open
// container, or the data SSDs with decompression.
func (s *Server) Read(lba uint64) ([]byte, error) {
	return s.ReadTraced(lba, nil)
}

// ReadTraced is Read with a front-end trace context (see WriteTraced).
func (s *Server) ReadTraced(lba uint64, tc *TraceContext) ([]byte, error) {
	if err := s.failIfCrashed(); err != nil {
		return nil, err
	}
	s.stats.ClientReads++
	if s.chunker == nil {
		// Fixed chunking: the payload size is known upfront.
		s.stats.ClientBytes += uint64(s.cfg.ChunkSize)
		s.ledger.Client(uint64(s.cfg.ChunkSize))
		s.obs.onRead(s.cfg.ChunkSize)
	}
	s.ledger.CPU(hostmodel.CompProtocol, s.costs.ProtocolReadNs)
	s.chargeTenant(false)
	tr := s.obs.begin("read", lba)
	tr.adopt(tc)
	defer tr.done()
	s.activeReq = tr
	defer func() { s.activeReq = nil }()

	var out []byte
	var err error
	if s.cfg.Arch == Baseline {
		out, err = s.baselineRead(lba, tr)
	} else {
		out, err = s.fidrRead(lba, tr)
	}
	if err == nil && s.chunker != nil {
		// CDC: an extent's size is whatever the chunker cut; charge the
		// bytes actually served.
		s.stats.ClientBytes += uint64(len(out))
		s.ledger.Client(uint64(len(out)))
		s.obs.onRead(len(out))
	}
	return out, err
}

// ReadRange returns n consecutive chunks starting at lba, concatenated.
// Requests larger than one chunk are common at the client (the paper's
// storage protocol carries block ranges); the server resolves each chunk
// independently because compressed placements are unrelated.
func (s *Server) ReadRange(lba uint64, n int) ([]byte, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: read of %d chunks", n)
	}
	if s.chunker != nil {
		return nil, fmt.Errorf("core: ReadRange addresses fixed chunk indexes; CDC extents are read individually")
	}
	out := make([]byte, 0, n*s.cfg.ChunkSize)
	for i := 0; i < n; i++ {
		chunk, err := s.Read(lba + uint64(i))
		if err != nil {
			return nil, fmt.Errorf("core: range chunk %d: %w", i, err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// --- Baseline read (§2.3, Figure 2b) ---

func (s *Server) baselineRead(lba uint64, tr *ReqTrace) ([]byte, error) {
	// Freshest data may still sit in the host request buffer.
	from := tr.start()
	for i := len(s.batch) - 1; i >= 0; i-- {
		if s.batch[i].lba == lba {
			out := make([]byte, len(s.batch[i].data))
			copy(out, s.batch[i].data)
			tr.span(StageNICBuffer, from)
			s.obs.onReadCacheHit()
			// Buffer scan plus NIC send of the hit.
			s.ledger.MemPayload(hostmodel.PathNICHost, uint64(len(out)))
			s.transfer(pcie.HostMemory, devNIC, uint64(len(out)))
			s.latency.observe(LatReadCacheHit, s.cfg.Arch, 0)
			return out, nil
		}
	}
	tr.span(StageNICBuffer, from)
	from = tr.start()
	pba, pbn, err := s.resolve(lba)
	if err != nil {
		return nil, err
	}
	tr.span(StageLBAResolve, from)
	cdata, fromSSD, err := s.fetchCompressed(pba, tr)
	if err != nil {
		return nil, err
	}
	csize := uint64(pba.CSize)
	raw := uint64(s.rawSizeOf(pbn))
	if fromSSD {
		// SSD -> host memory.
		s.transfer(devDataSSD, pcie.HostMemory, csize)
		s.ledger.MemPayload(hostmodel.PathHostSSD, csize)
		s.ledger.CPU(hostmodel.CompDataSSDIO, s.costs.DataSSDPerIONs)
		s.latency.observe(LatReadSSD, s.cfg.Arch, s.dataSSD.AccessTime(false, int(csize)))
	} else {
		s.latency.observe(LatReadPending, s.cfg.Arch, 0)
	}
	// Host -> decompression FPGA, decompress, FPGA -> host.
	s.transfer(pcie.HostMemory, devDecomp, csize)
	s.ledger.MemPayload(hostmodel.PathHostFPGA, csize)
	from = tr.start()
	out, err := s.decomp.Decompress(cdata, int(raw))
	if err != nil {
		return nil, err
	}
	tr.span(StageDecompress, from)
	s.transfer(devDecomp, pcie.HostMemory, raw)
	s.ledger.MemPayload(hostmodel.PathHostFPGA, raw)
	s.ledger.CPU(hostmodel.CompDMAMgmt, s.costs.DMAMgmtPerChunkNs)
	// Host -> NIC -> client.
	s.transfer(pcie.HostMemory, devNIC, raw)
	s.ledger.MemPayload(hostmodel.PathNICHost, raw)
	s.ledger.CPU(hostmodel.CompDMAMgmt, s.costs.DMAMgmtPerChunkNs)
	return out, nil
}

// --- FIDR read (§5.3, Figure 6b) ---

func (s *Server) fidrRead(lba uint64, tr *ReqTrace) ([]byte, error) {
	// Step 2: the NIC searches its in-NIC write buffer first.
	from := tr.start()
	if data, ok := s.fnic.LookupRead(lba); ok {
		s.stats.NICReadHits++
		tr.span(StageNICBuffer, from)
		s.obs.onNICReadHit()
		out := make([]byte, len(data))
		copy(out, data)
		s.latency.observe(LatReadNICHit, s.cfg.Arch, 0)
		return out, nil
	}
	tr.span(StageNICBuffer, from)
	// §8 extension: hot-block read cache in host memory.
	if data, ok := s.rcache.get(lba); ok {
		s.stats.ReadCacheHits++
		s.obs.onReadCacheHit()
		s.ledger.MemPayload(hostmodel.PathNICHost, uint64(len(data)))
		s.transfer(pcie.HostMemory, devNIC, uint64(len(data)))
		s.latency.observe(LatReadCacheHit, s.cfg.Arch, 0)
		return data, nil
	}
	// Steps 3-4: LBA goes to the host, which resolves the PBA.
	s.transfer(devNIC, pcie.HostMemory, 8)
	from = tr.start()
	pba, pbn, err := s.resolve(lba)
	if err != nil {
		return nil, err
	}
	tr.span(StageLBAResolve, from)
	// The device manager orchestrates two P2P hops per read (SSD ->
	// engine, engine -> NIC), each a doorbell/completion round.
	s.ledger.CPU(hostmodel.CompDeviceMgr, 2*s.costs.DeviceMgrPerChunkNs)

	cdata, fromSSD, err := s.fetchCompressed(pba, tr)
	if err != nil {
		return nil, err
	}
	csize := uint64(pba.CSize)
	raw := uint64(s.rawSizeOf(pbn))
	// Steps 5-7: device manager orchestrates SSD -> Decompression
	// Engine -> NIC, all peer-to-peer; host memory never sees the data.
	if fromSSD {
		s.transfer(devDataSSD, devDecomp, csize)
		// §7.5 future-work extension: with the data-SSD queues
		// offloaded to the FPGA, reads cost no host IO-stack time.
		if !s.cfg.OffloadDataSSDQueues {
			s.ledger.CPU(hostmodel.CompDataSSDIO, s.costs.DataSSDPerIONs)
		}
		s.latency.observe(LatReadSSD, s.cfg.Arch, s.dataSSD.AccessTime(false, int(csize)))
	} else {
		s.transfer(devComp, devDecomp, csize)
		s.latency.observe(LatReadPending, s.cfg.Arch, 0)
	}
	from = tr.start()
	out, err := s.decomp.Decompress(cdata, int(raw))
	if err != nil {
		return nil, err
	}
	tr.span(StageDecompress, from)
	// Step 8: the host tells the NIC to fetch the decompressed chunk
	// from the engine (doorbell only; no host-memory data traffic).
	s.transfer(devDecomp, devNIC, raw)
	s.rcache.put(lba, out)
	return out, nil
}

// resolve maps an LBA to its physical address and PBN, charging the
// LBA-PBA table work. The PBN keys per-chunk metadata (raw size).
func (s *Server) resolve(lba uint64) (lbatable.PBA, uint64, error) {
	s.ledger.CPU(hostmodel.CompLBATable, s.costs.LBATablePerOpNs)
	pbn, err := s.lba.LookupLBA(lba)
	if err == lbatable.ErrUnmapped {
		return lbatable.PBA{}, 0, ErrNotFound
	}
	if err != nil {
		return lbatable.PBA{}, 0, err
	}
	pba, err := s.lba.Resolve(pbn)
	return pba, pbn, err
}

// fetchCompressed returns the chunk's compressed bytes, either from the
// engine's open container (not yet on an SSD) or from the data SSD.
func (s *Server) fetchCompressed(pba lbatable.PBA, tr *ReqTrace) (data []byte, fromSSD bool, err error) {
	if data, ok := s.comp.ReadPending(pba.Container, pba.Offset, pba.CSize); ok {
		s.stats.PendingReads++
		s.obs.onPendingRead()
		return data, false, nil
	}
	off := pba.ByteOffset(s.cfg.ContainerSize)
	from := tr.start()
	data, err = s.dataSSD.Read(off, int(pba.CSize))
	if err != nil {
		return nil, false, err
	}
	tr.span(StageSSDIO, from)
	return data, true, nil
}
