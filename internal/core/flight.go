package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"fidr/internal/metrics"
)

// Slow-request flight recorder: the trace ring answers "what ran
// recently", this answers "what ran slowly". Every completed trace's
// total latency feeds a bounded histogram; once enough requests have
// been seen, a request slower than the tracked quantile of that
// distribution (never below a configured floor) is captured in full —
// span tree plus a snapshot of every device-queue gauge at completion
// time — into a fixed-size ring served at /traces/slow and by
// `fidrcli slow`. The queue snapshot is the diagnosis half: a slow
// request with a deep data-SSD queue is backlog, one with empty queues
// is pipeline overhead.

// SlowTrace is one captured slow request.
type SlowTrace struct {
	Trace
	// Threshold is the latency bar the request exceeded when captured.
	Threshold time.Duration
	// Queues snapshots every registry gauge whose name contains "queue"
	// (device queue depths, NIC buffer occupancy) at completion time.
	Queues map[string]float64
}

// Flight-recorder defaults: capture the slowest ~1% once 100 requests
// have been observed, never flagging anything under 1ms.
const (
	defaultSlowQuantile = 0.99
	defaultSlowMin      = time.Millisecond
	defaultSlowCap      = 64
	flightWarmup        = 100
)

// flightRecorder gates and stores slow traces. Safe for concurrent use.
type flightRecorder struct {
	reg      *metrics.Registry
	totals   *metrics.Histogram // total request latency, gating input
	quantile float64
	min      time.Duration

	slowCount *metrics.Counter
	threshold *metrics.Gauge

	mu   sync.Mutex
	buf  []SlowTrace
	next int
	full bool
}

func newFlightRecorder(reg *metrics.Registry, quantile float64, min time.Duration, capacity int) *flightRecorder {
	if quantile <= 0 || quantile >= 1 {
		quantile = defaultSlowQuantile
	}
	if min <= 0 {
		min = defaultSlowMin
	}
	if capacity <= 0 {
		capacity = defaultSlowCap
	}
	return &flightRecorder{
		reg:       reg,
		totals:    reg.Histogram("core.request_total_ns"),
		quantile:  quantile,
		min:       min,
		slowCount: reg.Counter("core.slow_traces"),
		threshold: reg.Gauge("core.slow_threshold_ns"),
		buf:       make([]SlowTrace, capacity),
	}
}

// currentThreshold returns the live capture bar: the tracked quantile of
// observed totals once warmed up, floored at the configured minimum.
func (f *flightRecorder) currentThreshold() time.Duration {
	th := f.min
	if f.totals.Count() >= flightWarmup {
		if q := time.Duration(f.totals.Quantile(f.quantile)); q > th {
			th = q
		}
	}
	return th
}

// observe feeds one completed trace through the gate, capturing it when
// slow. Called from ReqTrace.done on every request.
func (f *flightRecorder) observe(t Trace) {
	if t.Sampled {
		f.totals.ObserveExemplar(float64(t.Total.Nanoseconds()), t.TraceID.String())
	} else {
		f.totals.Observe(float64(t.Total.Nanoseconds()))
	}
	th := f.currentThreshold()
	f.threshold.Set(float64(th.Nanoseconds()))
	if t.Total < th {
		return
	}
	st := SlowTrace{Trace: t, Threshold: th, Queues: f.queueSnapshot()}
	f.mu.Lock()
	f.buf[f.next] = st
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
	f.mu.Unlock()
	f.slowCount.Inc()
}

// queueSnapshot captures occupancy gauges at this instant.
func (f *flightRecorder) queueSnapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range f.reg.Snapshot() {
		if m.Kind == "gauge" && strings.Contains(m.Name, "queue") {
			out[m.Name] = m.Value
		}
	}
	return out
}

// recent returns captured slow traces, newest first.
func (f *flightRecorder) recent() []SlowTrace {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if f.full {
		n = len(f.buf)
	}
	out := make([]SlowTrace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, f.buf[(f.next-i+len(f.buf))%len(f.buf)])
	}
	return out
}

// ConfigureFlightRecorder tunes the slow-request gate: capture requests
// above the given quantile of total latency (0 < quantile < 1), never
// below min, keeping the last capacity captures. Call after
// EnableObservability and before serving traffic; out-of-range values
// keep their defaults (q=0.99, min=1ms, 64 captures). No-op when
// observability is disabled.
func (s *Server) ConfigureFlightRecorder(quantile float64, min time.Duration, capacity int) {
	if s.obs == nil {
		return
	}
	s.obs.flight = newFlightRecorder(s.obs.reg, quantile, min, capacity)
}

// SlowTraces returns the flight recorder's captures, newest first
// (empty when observability is disabled).
func (s *Server) SlowTraces() []SlowTrace {
	if s.obs == nil || s.obs.flight == nil {
		return nil
	}
	return s.obs.flight.recent()
}

// RenderSlowTraces renders flight-recorder captures with the harness
// table renderer.
func RenderSlowTraces(traces []SlowTrace) string {
	tab := metrics.NewTable("slow request flight recorder (newest first)",
		"op", "lba", "total", "threshold", "stages", "queues")
	for _, t := range traces {
		var sb strings.Builder
		for i, sp := range t.Spans {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s=%s", sp.Stage, sp.Dur.Round(time.Nanosecond))
		}
		if t.DroppedSpans > 0 {
			fmt.Fprintf(&sb, " (+%d spans)", t.DroppedSpans)
		}
		var qb strings.Builder
		names := make([]string, 0, len(t.Queues))
		for name := range t.Queues {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			if i > 0 {
				qb.WriteByte(' ')
			}
			fmt.Fprintf(&qb, "%s=%g", name, t.Queues[name])
		}
		tab.Row(t.Op, t.LBA, t.Total.String(), t.Threshold.String(), sb.String(), qb.String())
	}
	tab.Note("%d slow traces", len(traces))
	return tab.String()
}
