package core

import (
	"fmt"

	"fidr/internal/trace/span"
)

// This file adapts the wire trace context (internal/trace/span.Context,
// decoded by the proto listener) onto the server's TraceContext-based
// entry points, satisfying proto.TracedStore. The indirection keeps the
// import direction one-way: proto depends only on the span package,
// never on core.

// spanTC lifts a wire span context into a front-end TraceContext. An
// invalid context yields nil, which the traced entry points treat as
// untraced.
func spanTC(sc span.Context) *TraceContext {
	if !sc.Valid() {
		return nil
	}
	return &TraceContext{Trace: sc.Trace, Parent: sc.Parent, Sampled: sc.Sampled}
}

// WriteSpan is Write carrying a wire trace context.
func (s *Server) WriteSpan(lba uint64, data []byte, sc span.Context) error {
	return s.WriteTraced(lba, data, spanTC(sc))
}

// ReadSpan is Read carrying a wire trace context.
func (s *Server) ReadSpan(lba uint64, sc span.Context) ([]byte, error) {
	return s.ReadTraced(lba, spanTC(sc))
}

// ReadRangeSpan is ReadRange carrying a wire trace context; each chunk
// read joins the same trace.
func (s *Server) ReadRangeSpan(lba uint64, n int, sc span.Context) ([]byte, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: read of %d chunks", n)
	}
	tc := spanTC(sc)
	out := make([]byte, 0, n*s.cfg.ChunkSize)
	for i := 0; i < n; i++ {
		chunk, err := s.ReadTraced(lba+uint64(i), tc)
		if err != nil {
			return nil, fmt.Errorf("core: range chunk %d: %w", i, err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}
