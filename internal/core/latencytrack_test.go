package core

import (
	"bytes"
	"testing"

	"fidr/internal/blockcomp"
)

func TestLatencyReportKinds(t *testing.T) {
	cfg := DefaultConfig(FIDRFull)
	cfg.ContainerSize = 64 << 10
	cfg.ReadCacheChunks = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := blockcomp.NewShaper(0.5)
	// Writes produce ack samples.
	for i := uint64(0); i < 100; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	// A NIC-buffer hit: write then read before the batch drains.
	s.Write(500, sh.Make(999, 4096))
	s.Read(500)
	s.Flush()
	// SSD reads, then repeat for read-cache hits.
	for i := uint64(0); i < 8; i++ {
		s.Read(i)
	}
	for i := uint64(0); i < 8; i++ {
		s.Read(i)
	}

	report := s.LatencyReport()
	got := map[LatencyKind]LatencyStats{}
	for _, r := range report {
		got[r.Kind] = r
	}
	for _, want := range []LatencyKind{LatWriteAck, LatReadNICHit, LatReadCacheHit, LatReadSSD} {
		r, ok := got[want]
		if !ok {
			t.Fatalf("no samples for %v (have %v)", want, report)
		}
		if r.Count == 0 || r.Mean <= 0 || r.P99 < r.P50 || r.Max < r.P99 {
			t.Fatalf("%v: malformed stats %+v", want, r)
		}
	}
	// Ordering: ack < NIC hit < cache hit < SSD read.
	if !(got[LatWriteAck].Mean < got[LatReadNICHit].Mean &&
		got[LatReadNICHit].Mean < got[LatReadCacheHit].Mean &&
		got[LatReadCacheHit].Mean < got[LatReadSSD].Mean) {
		t.Fatalf("latency ordering violated: %+v", report)
	}
}

func TestLatencySSDReadsFasterOnFIDR(t *testing.T) {
	sh := blockcomp.NewShaper(0.5)
	meanSSD := func(arch Arch) float64 {
		cfg := DefaultConfig(arch)
		cfg.ContainerSize = 64 << 10
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 100; i++ {
			s.Write(i, sh.Make(i, 4096))
		}
		s.Flush()
		for i := uint64(0); i < 100; i++ {
			s.Read(i)
		}
		for _, r := range s.LatencyReport() {
			if r.Kind == LatReadSSD {
				return float64(r.Mean)
			}
		}
		t.Fatal("no SSD reads observed")
		return 0
	}
	base := meanSSD(Baseline)
	fidr := meanSSD(FIDRFull)
	if fidr >= base {
		t.Fatalf("FIDR SSD read %.0f ns not below baseline %.0f ns", fidr, base)
	}
	// The §7.6 anchors bound the means: baseline ~700us, FIDR ~490us
	// (device time varies with compressed size).
	if base < 500e3 || base > 900e3 {
		t.Errorf("baseline SSD read mean %.0f ns, expected ~700us", base)
	}
	if fidr < 350e3 || fidr > 700e3 {
		t.Errorf("FIDR SSD read mean %.0f ns, expected ~490us", fidr)
	}
}

func TestReadRange(t *testing.T) {
	s := newServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	var want []byte
	for i := uint64(0); i < 8; i++ {
		data := sh.Make(i, 4096)
		s.Write(10+i, data)
		want = append(want, data...)
	}
	s.Flush()
	got, err := s.ReadRange(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("range read mismatch")
	}
	if _, err := s.ReadRange(10, 0); err == nil {
		t.Fatal("zero-length range accepted")
	}
	if _, err := s.ReadRange(1000, 2); err == nil {
		t.Fatal("unmapped range succeeded")
	}
}

func TestLatencyKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := LatencyKind(0); k < numLatencyKinds; k++ {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad label %q", k, s)
		}
		seen[s] = true
	}
}
