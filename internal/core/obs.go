package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"fidr/internal/metrics"
)

// Live observability (in contrast to the after-the-fact experiment
// harness): when enabled, every request is traced through the pipeline
// stages the paper argues about — NIC buffering, hashing, dedup lookup,
// compression, table-cache probes, SSD IO, decompression — with one
// wall-clock span per stage recorded into per-stage histograms in a
// metrics.Registry, and whole-request traces kept in a bounded ring for
// inspection. cmd/fidrd exposes both over HTTP (-metrics-addr); the
// "observe" experiment emits the same metric names from bench runs.

// Stage identifies one pipeline hop of the write/read paths.
type Stage int

const (
	// StageNICBuffer is write buffering (in-NIC for FIDR, host request
	// buffer for the baseline) and the read-path buffer probe.
	StageNICBuffer Stage = iota
	// StageHash is chunk fingerprinting (NIC hash cores / FPGA array).
	StageHash
	// StageDedupLookup is uniqueness determination: predictor guesses
	// and Hash-PBN validation on the write path.
	StageDedupLookup
	// StageCompress is compression plus container packing.
	StageCompress
	// StageSSDIO is data-SSD container writes and compressed-chunk reads.
	StageSSDIO
	// StageDecompress is read-path decompression.
	StageDecompress
	// StageLBAResolve is read-path LBA-to-PBA resolution.
	StageLBAResolve
	// StageQueueWait is time spent queued in a front-end (the async
	// pipeline's bounded worker queues) before a server accepted the
	// request. Front-ends inject it via TraceContext.
	StageQueueWait

	numStages
)

// String returns the stage's metric-name slug.
func (st Stage) String() string {
	switch st {
	case StageNICBuffer:
		return "nic_buffer"
	case StageHash:
		return "hash"
	case StageDedupLookup:
		return "dedup_lookup"
	case StageCompress:
		return "compress"
	case StageSSDIO:
		return "ssd_io"
	case StageDecompress:
		return "decompress"
	case StageLBAResolve:
		return "lba_resolve"
	case StageQueueWait:
		return "queue_wait"
	default:
		return "unknown"
	}
}

// Span is one timed pipeline stage within a request trace.
type Span struct {
	Stage Stage
	Dur   time.Duration
}

// Trace is one completed request (or batch) with its stage spans.
type Trace struct {
	// Op is "write", "read", "batch", "flush", "gc", "snapshot",
	// "snapshot_read" or "verify"; front-ends may override it via
	// TraceContext (the async pipeline tags "awrite"/"aread").
	Op    string
	LBA   uint64
	Start time.Time
	Total time.Duration
	Spans []Span
	// DroppedSpans counts spans beyond the per-trace cap (bulk ops like
	// gc and verify touch thousands of chunks; every span still feeds
	// its stage histogram, only the trace's span list is bounded).
	DroppedSpans int
}

// traceRing keeps the most recent traces in a fixed-size ring.
type traceRing struct {
	mu   sync.Mutex
	buf  []Trace
	next int
	full bool
}

func newTraceRing(n int) *traceRing {
	return &traceRing{buf: make([]Trace, n)}
}

func (r *traceRing) push(t Trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// recent returns the stored traces, newest first.
func (r *traceRing) recent() []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]Trace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Observer binds a server's hot paths to a metrics.Registry. All fields
// are resolved once at EnableObservability so per-request work is atomic
// increments and histogram observes only. A nil *Observer is valid and
// disables everything (the hooks are nil-safe), so un-instrumented
// servers pay a single pointer test per hook.
type Observer struct {
	reg    *metrics.Registry
	ring   *traceRing
	flight *flightRecorder

	stage [numStages]*metrics.Histogram

	writes, reads, batches   *metrics.Counter
	clientBytes, storedBytes *metrics.Counter
	dupChunks, uniqueChunks  *metrics.Counter
	nicReadHits              *metrics.Counter
	readCacheHits            *metrics.Counter
	pendingReads             *metrics.Counter
	mispredictions           *metrics.Counter
}

func newObserver(reg *metrics.Registry, ringSize int) *Observer {
	o := &Observer{
		reg:            reg,
		ring:           newTraceRing(ringSize),
		writes:         reg.Counter("core.writes"),
		reads:          reg.Counter("core.reads"),
		batches:        reg.Counter("core.batches"),
		clientBytes:    reg.Counter("core.client_bytes"),
		storedBytes:    reg.Counter("core.stored_bytes"),
		dupChunks:      reg.Counter("core.dup_chunks"),
		uniqueChunks:   reg.Counter("core.unique_chunks"),
		nicReadHits:    reg.Counter("core.nic_read_hits"),
		readCacheHits:  reg.Counter("core.read_cache_hits"),
		pendingReads:   reg.Counter("core.pending_reads"),
		mispredictions: reg.Counter("core.mispredictions"),
	}
	for st := Stage(0); st < numStages; st++ {
		o.stage[st] = reg.Histogram("stage." + st.String() + ".ns")
	}
	o.flight = newFlightRecorder(reg, defaultSlowQuantile, defaultSlowMin, defaultSlowCap)
	return o
}

// Counter hooks; each is a no-op on a nil Observer.

func (o *Observer) onWrite(bytes int) {
	if o == nil {
		return
	}
	o.writes.Inc()
	o.clientBytes.Add(uint64(bytes))
}

func (o *Observer) onRead(bytes int) {
	if o == nil {
		return
	}
	o.reads.Inc()
	o.clientBytes.Add(uint64(bytes))
}

func (o *Observer) onBatch() {
	if o == nil {
		return
	}
	o.batches.Inc()
}

func (o *Observer) onDup() {
	if o == nil {
		return
	}
	o.dupChunks.Inc()
}

func (o *Observer) onUnique(storedBytes uint64) {
	if o == nil {
		return
	}
	o.uniqueChunks.Inc()
	o.storedBytes.Add(storedBytes)
}

func (o *Observer) onNICReadHit() {
	if o == nil {
		return
	}
	o.nicReadHits.Inc()
}

func (o *Observer) onReadCacheHit() {
	if o == nil {
		return
	}
	o.readCacheHits.Inc()
}

func (o *Observer) onPendingRead() {
	if o == nil {
		return
	}
	o.pendingReads.Inc()
}

func (o *Observer) onMisprediction() {
	if o == nil {
		return
	}
	o.mispredictions.Inc()
}

// begin opens a request trace, or returns nil when observability is off;
// every ReqTrace method is nil-safe so call sites stay unconditional.
func (o *Observer) begin(op string, lba uint64) *ReqTrace {
	if o == nil {
		return nil
	}
	return &ReqTrace{obs: o, t: Trace{Op: op, LBA: lba, Start: time.Now()}}
}

// ReqTrace accumulates one request's stage spans.
type ReqTrace struct {
	obs *Observer
	t   Trace
}

// start marks the beginning of a stage.
func (tr *ReqTrace) start() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// since measures elapsed stage time without recording it (for spans
// accumulated across loop iterations).
func (tr *ReqTrace) since(from time.Time) time.Duration {
	if tr == nil {
		return 0
	}
	return time.Since(from)
}

// span closes a stage opened with start, recording it into the trace and
// the stage histogram.
func (tr *ReqTrace) span(st Stage, from time.Time) {
	if tr == nil {
		return
	}
	tr.add(st, time.Since(from))
}

// maxTraceSpans bounds one trace's span list. Bulk operations (gc,
// verify, snapshot reads over large volumes) emit a span per chunk; the
// histograms absorb them all, the trace keeps the first cap and counts
// the rest, so ring memory stays bounded.
const maxTraceSpans = 64

// add records an already-measured stage duration.
func (tr *ReqTrace) add(st Stage, d time.Duration) {
	if tr == nil {
		return
	}
	if len(tr.t.Spans) < maxTraceSpans {
		tr.t.Spans = append(tr.t.Spans, Span{Stage: st, Dur: d})
	} else {
		tr.t.DroppedSpans++
	}
	tr.obs.stage[st].Observe(float64(d.Nanoseconds()))
}

// adopt merges a front-end trace context into this trace: pre-measured
// spans (queue wait, routing) are recorded as if they were the trace's
// own opening stages, the op label is overridden when the front-end set
// one, and the trace's start moves back to the front-end submission
// time so Total covers the whole request lifetime.
func (tr *ReqTrace) adopt(tc *TraceContext) {
	if tr == nil || tc == nil {
		return
	}
	if tc.Op != "" {
		tr.t.Op = tc.Op
	}
	if !tc.Start.IsZero() {
		tr.t.Start = tc.Start
	}
	for _, sp := range tc.Spans {
		tr.add(sp.Stage, sp.Dur)
	}
}

// TraceContext carries trace state accumulated by a layer above the
// server — the async pipeline's queue wait, the cluster's routing — into
// the server's per-request trace. PR 2 could only trace what the Server
// itself observed; front-ends now hand their spans down instead of the
// observability plane relying on Server-internal state.
type TraceContext struct {
	// Op overrides the trace's op label when non-empty.
	Op string
	// Start, when set, is the front-end submission time; the trace's
	// Total then includes queueing and routing.
	Start time.Time
	// Spans are stages the front-end already measured (e.g.
	// StageQueueWait); they are recorded into the stage histograms.
	Spans []Span
}

// done completes the trace, publishes it to the ring and feeds the
// slow-request flight recorder.
func (tr *ReqTrace) done() {
	if tr == nil {
		return
	}
	tr.t.Total = time.Since(tr.t.Start)
	tr.obs.ring.push(tr.t)
	if tr.obs.flight != nil {
		tr.obs.flight.observe(tr.t)
	}
}

// EnableObservability attaches a live metrics registry to the server:
// per-stage span histograms ("stage.<name>.ns"), request/latency-kind
// histograms ("latency.<kind>.ns"), server counters ("core.*") and
// substrate counters (tablecache.*, nic.*, engine.*, ssd.<name>.*), plus
// a ring of the most recent request traces (recentTraces entries; <= 0
// selects 256). Call once, before serving traffic. Registry reads are
// concurrent-safe; the server itself remains single-writer.
func (s *Server) EnableObservability(reg *metrics.Registry, recentTraces int) *metrics.Registry {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if recentTraces <= 0 {
		recentTraces = 256
	}
	s.obs = newObserver(reg, recentTraces)
	for k := LatencyKind(0); k < numLatencyKinds; k++ {
		s.latency.hist[k] = reg.Histogram("latency." + k.slug() + ".ns")
	}
	s.cache.Instrument(reg)
	s.dataSSD.Instrument(reg)
	s.tableSSD.Instrument(reg)
	if s.fnic != nil {
		s.fnic.Instrument(reg)
	}
	if s.pnic != nil {
		s.pnic.Instrument(reg)
	}
	s.comp.Instrument(reg)
	s.ledger.Instrument(reg)
	s.topo.Instrument(reg)
	if s.wal != nil {
		s.wal.Instrument(reg)
	}
	return reg
}

// MetricsRegistry returns the live registry, or nil when observability
// is disabled.
func (s *Server) MetricsRegistry() *metrics.Registry {
	if s.obs == nil {
		return nil
	}
	return s.obs.reg
}

// RecentTraces returns the most recent request traces, newest first
// (empty when observability is disabled).
func (s *Server) RecentTraces() []Trace {
	if s.obs == nil {
		return nil
	}
	return s.obs.ring.recent()
}

// RenderTraces renders traces with the harness table renderer.
func RenderTraces(traces []Trace) string {
	tab := metrics.NewTable("recent request traces (newest first)",
		"op", "lba", "total", "stages")
	for _, t := range traces {
		var sb strings.Builder
		for i, sp := range t.Spans {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s=%s", sp.Stage, sp.Dur.Round(time.Nanosecond))
		}
		if t.DroppedSpans > 0 {
			fmt.Fprintf(&sb, " (+%d spans)", t.DroppedSpans)
		}
		tab.Row(t.Op, t.LBA, t.Total.String(), sb.String())
	}
	tab.Note("%d traces", len(traces))
	return tab.String()
}
