package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fidr/internal/metrics"
	"fidr/internal/trace/span"
)

// Live observability (in contrast to the after-the-fact experiment
// harness): when enabled, every request is traced through the pipeline
// stages the paper argues about — NIC buffering, hashing, dedup lookup,
// compression, table-cache probes, SSD IO, decompression — with one
// wall-clock span per stage recorded into per-stage histograms in a
// metrics.Registry, and whole-request traces kept in a bounded ring for
// inspection. cmd/fidrd exposes both over HTTP (-metrics-addr); the
// "observe" experiment emits the same metric names from bench runs.

// Stage identifies one pipeline hop of the write/read paths.
type Stage int

const (
	// StageNICBuffer is write buffering (in-NIC for FIDR, host request
	// buffer for the baseline) and the read-path buffer probe.
	StageNICBuffer Stage = iota
	// StageHash is chunk fingerprinting (NIC hash cores / FPGA array).
	StageHash
	// StageDedupLookup is uniqueness determination: predictor guesses
	// and Hash-PBN validation on the write path.
	StageDedupLookup
	// StageCompress is compression plus container packing.
	StageCompress
	// StageSSDIO is data-SSD container writes and compressed-chunk reads.
	StageSSDIO
	// StageDecompress is read-path decompression.
	StageDecompress
	// StageLBAResolve is read-path LBA-to-PBA resolution.
	StageLBAResolve
	// StageQueueWait is time spent queued in a front-end (the async
	// pipeline's bounded worker queues) before a server accepted the
	// request. Front-ends inject it via TraceContext.
	StageQueueWait
	// StageWALFsync is the group-commit fsync of staged WAL records
	// after the containers they reference are durable on the data SSD.
	StageWALFsync

	numStages
)

// String returns the stage's metric-name slug.
func (st Stage) String() string {
	switch st {
	case StageNICBuffer:
		return "nic_buffer"
	case StageHash:
		return "hash"
	case StageDedupLookup:
		return "dedup_lookup"
	case StageCompress:
		return "compress"
	case StageSSDIO:
		return "ssd_io"
	case StageDecompress:
		return "decompress"
	case StageLBAResolve:
		return "lba_resolve"
	case StageQueueWait:
		return "queue_wait"
	case StageWALFsync:
		return "wal_fsync"
	default:
		return "unknown"
	}
}

// Span is one timed pipeline stage within a request trace. When the
// trace is sampled into the distributed-tracing plane, the span also
// carries its tree identity (ID/Parent), its start time and a payload
// byte annotation; unsampled traces leave those zero and pay nothing.
type Span struct {
	Stage Stage
	Dur   time.Duration

	ID     span.SpanID
	Parent span.SpanID
	Start  time.Time
	Bytes  uint64
}

// Trace is one completed request (or batch) with its stage spans.
type Trace struct {
	// Op is "write", "read", "batch", "flush", "gc", "snapshot",
	// "snapshot_read" or "verify"; front-ends may override it via
	// TraceContext (the async pipeline tags "awrite"/"aread").
	Op    string
	LBA   uint64
	Start time.Time
	Total time.Duration
	Spans []Span
	// DroppedSpans counts spans beyond the per-trace cap (bulk ops like
	// gc and verify touch thousands of chunks; every span still feeds
	// its stage histogram, only the trace's span list is bounded).
	DroppedSpans int

	// Distributed-tracing identity: TraceID names the end-to-end tree
	// this request belongs to, Root is this request's own span, Parent
	// is the upstream span (proto root, async queue span, or the
	// triggering request for a deferred batch). Sampled gates span
	// publication and histogram exemplars.
	TraceID span.TraceID
	Root    span.SpanID
	Parent  span.SpanID
	Sampled bool
}

// traceRing keeps the most recent traces in a fixed-size ring.
type traceRing struct {
	mu   sync.Mutex
	buf  []Trace
	next int
	full bool
}

func newTraceRing(n int) *traceRing {
	return &traceRing{buf: make([]Trace, n)}
}

func (r *traceRing) push(t Trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// recent returns the stored traces, newest first.
func (r *traceRing) recent() []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]Trace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Observer binds a server's hot paths to a metrics.Registry. All fields
// are resolved once at EnableObservability so per-request work is atomic
// increments and histogram observes only. A nil *Observer is valid and
// disables everything (the hooks are nil-safe), so un-instrumented
// servers pay a single pointer test per hook.
type Observer struct {
	reg    *metrics.Registry
	ring   *traceRing
	flight *flightRecorder

	stage [numStages]*metrics.Histogram

	// Op-class request-total histograms: the SLO plane's latency inputs
	// and the primary exemplar carriers.
	reqWrite, reqRead *metrics.Histogram

	writes, reads, batches   *metrics.Counter
	clientBytes, storedBytes *metrics.Counter
	dupChunks, uniqueChunks  *metrics.Counter
	nicReadHits              *metrics.Counter
	readCacheHits            *metrics.Counter
	pendingReads             *metrics.Counter
	mispredictions           *metrics.Counter

	// Capacity plane: the reduction-attribution ledger as counters
	// (write-path increments) plus state gauges pushed by
	// syncCapacityGauges from the single-writer paths. Counters sum
	// correctly under metrics.Merged; ratio gauges are derived at scrape
	// time (metrics.CapacityRatios) precisely because Merged sums gauges.
	capLogical, capDedupSaved *metrics.Counter
	capCompSaved, capStored   *metrics.Counter
	capDeletedFPs             *metrics.Counter
	capReclaimedDead          *metrics.Counter
	capGarbage                *metrics.Gauge
	capLive                   *metrics.Gauge
	capFPLive, capFPCapacity  *metrics.Gauge
	capContainers, capRetired *metrics.Gauge
	capOpenBytes              *metrics.Gauge

	// Distributed-tracing sink. col is nil until SetSpanCollector;
	// group labels published spans with the owning cluster shard.
	// sampleEvery > 0 head-samples every Nth request that arrives
	// without an upstream trace context (wire contexts carry their own
	// sampling decision).
	col         *span.Collector
	group       int
	sampleEvery uint32
	sampleCtr   atomic.Uint32
}

func newObserver(reg *metrics.Registry, ringSize int) *Observer {
	o := &Observer{
		reg:            reg,
		ring:           newTraceRing(ringSize),
		writes:         reg.Counter("core.writes"),
		reads:          reg.Counter("core.reads"),
		batches:        reg.Counter("core.batches"),
		clientBytes:    reg.Counter("core.client_bytes"),
		storedBytes:    reg.Counter("core.stored_bytes"),
		dupChunks:      reg.Counter("core.dup_chunks"),
		uniqueChunks:   reg.Counter("core.unique_chunks"),
		nicReadHits:    reg.Counter("core.nic_read_hits"),
		readCacheHits:  reg.Counter("core.read_cache_hits"),
		pendingReads:   reg.Counter("core.pending_reads"),
		mispredictions: reg.Counter("core.mispredictions"),
		reqWrite:       reg.Histogram("req.write.ns"),
		reqRead:        reg.Histogram("req.read.ns"),

		capLogical:       reg.Counter("capacity.logical_bytes"),
		capDedupSaved:    reg.Counter("capacity.dedup_saved_bytes"),
		capCompSaved:     reg.Counter("capacity.compression_saved_bytes"),
		capStored:        reg.Counter("capacity.stored_bytes"),
		capDeletedFPs:    reg.Counter("capacity.deleted_fingerprints"),
		capReclaimedDead: reg.Counter("capacity.reclaimed_dead_bytes"),
		capGarbage:       reg.Gauge("capacity.garbage_bytes"),
		capLive:          reg.Gauge("capacity.live_bytes"),
		capFPLive:        reg.Gauge("capacity.fp_live"),
		capFPCapacity:    reg.Gauge("capacity.fp_capacity"),
		capContainers:    reg.Gauge("capacity.containers"),
		capRetired:       reg.Gauge("capacity.containers_retired"),
		capOpenBytes:     reg.Gauge("capacity.open_container_bytes"),
	}
	for st := Stage(0); st < numStages; st++ {
		o.stage[st] = reg.Histogram("stage." + st.String() + ".ns")
	}
	o.flight = newFlightRecorder(reg, defaultSlowQuantile, defaultSlowMin, defaultSlowCap)
	return o
}

// Counter hooks; each is a no-op on a nil Observer.

func (o *Observer) onWrite(bytes int) {
	if o == nil {
		return
	}
	o.writes.Inc()
	o.clientBytes.Add(uint64(bytes))
	o.capLogical.Add(uint64(bytes))
}

func (o *Observer) onRead(bytes int) {
	if o == nil {
		return
	}
	o.reads.Inc()
	o.clientBytes.Add(uint64(bytes))
}

func (o *Observer) onBatch() {
	if o == nil {
		return
	}
	o.batches.Inc()
}

func (o *Observer) onDup(savedBytes uint64) {
	if o == nil {
		return
	}
	o.dupChunks.Inc()
	o.capDedupSaved.Add(savedBytes)
}

func (o *Observer) onUnique(storedBytes, compSavedBytes uint64) {
	if o == nil {
		return
	}
	o.uniqueChunks.Inc()
	o.storedBytes.Add(storedBytes)
	o.capStored.Add(storedBytes)
	o.capCompSaved.Add(compSavedBytes)
}

func (o *Observer) onDeletedFP(n uint64) {
	if o == nil {
		return
	}
	o.capDeletedFPs.Add(n)
}

func (o *Observer) onReclaimedDead(bytes uint64) {
	if o == nil {
		return
	}
	o.capReclaimedDead.Add(bytes)
}

func (o *Observer) onNICReadHit() {
	if o == nil {
		return
	}
	o.nicReadHits.Inc()
}

func (o *Observer) onReadCacheHit() {
	if o == nil {
		return
	}
	o.readCacheHits.Inc()
}

func (o *Observer) onPendingRead() {
	if o == nil {
		return
	}
	o.pendingReads.Inc()
}

func (o *Observer) onMisprediction() {
	if o == nil {
		return
	}
	o.mispredictions.Inc()
}

// begin opens a request trace, or returns nil when observability is off;
// every ReqTrace method is nil-safe so call sites stay unconditional.
// Requests arriving without an upstream trace context are head-sampled
// every sampleEvery-th call; adopt overrides the decision when a
// context carries one.
func (o *Observer) begin(op string, lba uint64) *ReqTrace {
	if o == nil {
		return nil
	}
	tr := &ReqTrace{obs: o, t: Trace{Op: op, LBA: lba, Start: time.Now()}}
	if n := o.sampleEvery; n > 0 && o.sampleCtr.Add(1)%n == 0 {
		tr.t.TraceID = span.NewTraceID()
		tr.t.Root = span.NewSpanID()
		tr.t.Sampled = true
	}
	return tr
}

// beginLinked opens a trace for deferred work (a batch flush) under the
// trace of the request that triggered it, so one wire trace covers the
// hash/compress/WAL/SSD spans its tipping write caused. A nil or
// unsampled parent leaves begin's own sampling decision in place.
func (o *Observer) beginLinked(op string, lba uint64, parent *ReqTrace) *ReqTrace {
	tr := o.begin(op, lba)
	if tr != nil && parent != nil && parent.t.Sampled {
		tr.t.TraceID = parent.t.TraceID
		tr.t.Parent = parent.t.Root
		tr.t.Sampled = true
		if tr.t.Root == 0 {
			tr.t.Root = span.NewSpanID()
		}
	}
	return tr
}

// ReqTrace accumulates one request's stage spans.
type ReqTrace struct {
	obs *Observer
	t   Trace
}

// traceID returns the distributed trace ID when this request is
// sampled, "" otherwise (event records carry it where available).
func (tr *ReqTrace) traceID() string {
	if tr == nil || !tr.t.Sampled {
		return ""
	}
	return tr.t.TraceID.String()
}

// start marks the beginning of a stage.
func (tr *ReqTrace) start() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// since measures elapsed stage time without recording it (for spans
// accumulated across loop iterations).
func (tr *ReqTrace) since(from time.Time) time.Duration {
	if tr == nil {
		return 0
	}
	return time.Since(from)
}

// span closes a stage opened with start, recording it into the trace and
// the stage histogram.
func (tr *ReqTrace) span(st Stage, from time.Time) {
	if tr == nil {
		return
	}
	tr.add(st, time.Since(from))
}

// maxTraceSpans bounds one trace's span list. Bulk operations (gc,
// verify, snapshot reads over large volumes) emit a span per chunk; the
// histograms absorb them all, the trace keeps the first cap and counts
// the rest, so ring memory stays bounded.
const maxTraceSpans = 64

// add records an already-measured stage duration.
func (tr *ReqTrace) add(st Stage, d time.Duration) {
	tr.addBytes(st, d, 0)
}

// addBytes is add with a payload-byte annotation on the span.
func (tr *ReqTrace) addBytes(st Stage, d time.Duration, bytes uint64) {
	if tr == nil {
		return
	}
	if len(tr.t.Spans) < maxTraceSpans {
		sp := Span{Stage: st, Dur: d, Bytes: bytes}
		if tr.t.Sampled {
			sp.ID = span.NewSpanID()
			sp.Parent = tr.t.Root
			sp.Start = time.Now().Add(-d)
		}
		tr.t.Spans = append(tr.t.Spans, sp)
	} else {
		tr.t.DroppedSpans++
	}
	tr.observeStage(st, d)
}

// addPre records a stage measured by an upstream layer: it feeds the
// stage histogram and the flat span list but never the span collector
// (the upstream layer publishes its own tree span with its real
// parentage, so publishing here would double-count it).
func (tr *ReqTrace) addPre(st Stage, d time.Duration) {
	if tr == nil {
		return
	}
	if len(tr.t.Spans) < maxTraceSpans {
		tr.t.Spans = append(tr.t.Spans, Span{Stage: st, Dur: d})
	} else {
		tr.t.DroppedSpans++
	}
	tr.observeStage(st, d)
}

// observeStage feeds the stage histogram, attaching this trace's ID as
// a bucket exemplar when the trace is sampled.
func (tr *ReqTrace) observeStage(st Stage, d time.Duration) {
	h := tr.obs.stage[st]
	if tr.t.Sampled {
		h.ObserveExemplar(float64(d.Nanoseconds()), tr.t.TraceID.String())
	} else {
		h.Observe(float64(d.Nanoseconds()))
	}
}

// adopt merges a front-end trace context into this trace: pre-measured
// spans (queue wait, routing) are recorded as if they were the trace's
// own opening stages, the op label is overridden when the front-end set
// one, and the trace's start moves back to the front-end submission
// time so Total covers the whole request lifetime.
func (tr *ReqTrace) adopt(tc *TraceContext) {
	if tr == nil || tc == nil {
		return
	}
	if tc.Op != "" {
		tr.t.Op = tc.Op
	}
	if !tc.Start.IsZero() {
		tr.t.Start = tc.Start
	}
	// Wire/front-end trace identity overrides head sampling: the caller
	// decided whether this request is traced and who the parent span is.
	if tc.Trace != 0 {
		tr.t.TraceID = tc.Trace
		tr.t.Parent = tc.Parent
		tr.t.Sampled = tc.Sampled
		if tr.t.Root == 0 {
			tr.t.Root = span.NewSpanID()
		}
	}
	for _, sp := range tc.Spans {
		tr.addPre(sp.Stage, sp.Dur)
	}
}

// TraceContext carries trace state accumulated by a layer above the
// server — the async pipeline's queue wait, the cluster's routing — into
// the server's per-request trace. PR 2 could only trace what the Server
// itself observed; front-ends now hand their spans down instead of the
// observability plane relying on Server-internal state.
type TraceContext struct {
	// Op overrides the trace's op label when non-empty.
	Op string
	// Start, when set, is the front-end submission time; the trace's
	// Total then includes queueing and routing.
	Start time.Time
	// Spans are stages the front-end already measured (e.g.
	// StageQueueWait); they are recorded into the stage histograms.
	Spans []Span

	// Distributed-tracing propagation: when Trace is non-zero the
	// request joins that trace, parented under Parent (the caller's
	// active span), and Sampled decides span-collector publication.
	Trace   span.TraceID
	Parent  span.SpanID
	Sampled bool
}

// SpanContext extracts the propagation half of the context.
func (tc *TraceContext) SpanContext() span.Context {
	if tc == nil {
		return span.Context{}
	}
	return span.Context{Trace: tc.Trace, Parent: tc.Parent, Sampled: tc.Sampled}
}

// done completes the trace, publishes it to the ring, the slow-request
// flight recorder, the op-class request histograms and (when sampled)
// the span collector.
func (tr *ReqTrace) done() {
	if tr == nil {
		return
	}
	tr.t.Total = time.Since(tr.t.Start)
	tr.obs.ring.push(tr.t)
	if tr.obs.flight != nil {
		tr.obs.flight.observe(tr.t)
	}
	if h := tr.obs.reqClass(tr.t.Op); h != nil {
		if tr.t.Sampled {
			h.ObserveExemplar(float64(tr.t.Total.Nanoseconds()), tr.t.TraceID.String())
		} else {
			h.Observe(float64(tr.t.Total.Nanoseconds()))
		}
	}
	if tr.t.Sampled && tr.obs.col != nil {
		tr.publish()
	}
}

// reqClass maps an op label to its request-class histogram (nil for
// internal ops like batch/flush/gc, which are not client requests).
func (o *Observer) reqClass(op string) *metrics.Histogram {
	switch op {
	case "write", "awrite":
		return o.reqWrite
	case "read", "aread", "snapshot_read":
		return o.reqRead
	}
	return nil
}

// publish converts the completed trace into tree spans in the shared
// collector: one root span for the request, one child per stage span
// that carries a tree identity (adopted upstream spans publish
// themselves at their own layer).
func (tr *ReqTrace) publish() {
	t := &tr.t
	tr.obs.col.Add(span.Span{
		Trace: t.TraceID, ID: t.Root, Parent: t.Parent,
		Name: "core." + t.Op, Start: t.Start, Dur: t.Total,
		LBA: t.LBA, Group: tr.obs.group,
	})
	for _, sp := range t.Spans {
		if sp.ID == 0 {
			continue
		}
		tr.obs.col.Add(span.Span{
			Trace: t.TraceID, ID: sp.ID, Parent: sp.Parent,
			Name: sp.Stage.String(), Start: sp.Start, Dur: sp.Dur,
			Bytes: sp.Bytes, Group: tr.obs.group,
		})
	}
}

// EnableObservability attaches a live metrics registry to the server:
// per-stage span histograms ("stage.<name>.ns"), request/latency-kind
// histograms ("latency.<kind>.ns"), server counters ("core.*") and
// substrate counters (tablecache.*, nic.*, engine.*, ssd.<name>.*), plus
// a ring of the most recent request traces (recentTraces entries; <= 0
// selects 256). Call once, before serving traffic. Registry reads are
// concurrent-safe; the server itself remains single-writer.
func (s *Server) EnableObservability(reg *metrics.Registry, recentTraces int) *metrics.Registry {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if recentTraces <= 0 {
		recentTraces = 256
	}
	s.obs = newObserver(reg, recentTraces)
	for k := LatencyKind(0); k < numLatencyKinds; k++ {
		s.latency.hist[k] = reg.Histogram("latency." + k.slug() + ".ns")
	}
	s.cache.Instrument(reg)
	s.dataSSD.Instrument(reg)
	s.tableSSD.Instrument(reg)
	if s.fnic != nil {
		s.fnic.Instrument(reg)
	}
	if s.pnic != nil {
		s.pnic.Instrument(reg)
	}
	s.comp.Instrument(reg)
	s.ledger.Instrument(reg)
	s.topo.Instrument(reg)
	if s.wal != nil {
		s.wal.Instrument(reg)
	}
	s.obs.capFPCapacity.Set(float64(s.cfg.UniqueChunkCapacity))
	s.syncCapacityGauges()
	return reg
}

// SetSpanCollector attaches the shared distributed-tracing sink.
// Sampled request traces publish their span trees there; group labels
// the spans with this server's cluster shard index. Call after
// EnableObservability and before serving traffic; no-op when
// observability is disabled.
func (s *Server) SetSpanCollector(col *span.Collector, group int) {
	if s.obs == nil {
		return
	}
	s.obs.col = col
	s.obs.group = group
}

// SetTraceSampling head-samples every Nth request that arrives without
// an upstream trace context (N <= 0 disables head sampling; wire
// contexts always carry their own decision). Call after
// EnableObservability and before serving traffic.
func (s *Server) SetTraceSampling(every int) {
	if s.obs == nil {
		return
	}
	if every < 0 {
		every = 0
	}
	s.obs.sampleEvery = uint32(every)
}

// MetricsRegistry returns the live registry, or nil when observability
// is disabled.
func (s *Server) MetricsRegistry() *metrics.Registry {
	if s.obs == nil {
		return nil
	}
	return s.obs.reg
}

// RecentTraces returns the most recent request traces, newest first
// (empty when observability is disabled).
func (s *Server) RecentTraces() []Trace {
	if s.obs == nil {
		return nil
	}
	return s.obs.ring.recent()
}

// RenderTraces renders traces with the harness table renderer.
func RenderTraces(traces []Trace) string {
	tab := metrics.NewTable("recent request traces (newest first)",
		"op", "lba", "total", "stages")
	for _, t := range traces {
		var sb strings.Builder
		for i, sp := range t.Spans {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s=%s", sp.Stage, sp.Dur.Round(time.Nanosecond))
		}
		if t.DroppedSpans > 0 {
			fmt.Fprintf(&sb, " (+%d spans)", t.DroppedSpans)
		}
		tab.Row(t.Op, t.LBA, t.Total.String(), sb.String())
	}
	tab.Note("%d traces", len(traces))
	return tab.String()
}
