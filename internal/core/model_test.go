package core

import (
	"bytes"
	"math/rand"
	"testing"

	"fidr/internal/blockcomp"
)

// TestModelBasedServer drives the whole server with a long random
// operation sequence — writes, overwrites, reads, flushes, snapshots,
// snapshot deletes, compactions, checkpoint/recovery — against a simple
// reference model (maps of seeds). Every read must match the model and
// every fsck must pass. This is the correctness backstop for feature
// interactions no targeted test enumerates.
func TestModelBasedServer(t *testing.T) {
	const (
		ops      = 4000
		lbaSpace = 300
		seeds    = 150
	)
	for _, arch := range []Arch{Baseline, FIDRFull} {
		rng := rand.New(rand.NewSource(0xF1D4 + int64(arch)))
		cfg := DefaultConfig(arch)
		cfg.ContainerSize = 64 << 10
		cfg.BatchChunks = 16
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sh := blockcomp.NewShaper(0.5)
		chunkFor := func(seed uint64) []byte { return sh.Make(seed, 4096) }

		live := make(map[uint64]uint64) // lba -> seed
		snaps := make(map[SnapshotID]map[uint64]uint64)

		for op := 0; op < ops; op++ {
			switch r := rng.Intn(100); {
			case r < 50: // write (often duplicate content)
				lba := uint64(rng.Intn(lbaSpace))
				seed := uint64(rng.Intn(seeds))
				if err := srv.Write(lba, chunkFor(seed)); err != nil {
					t.Fatalf("%v op %d: write: %v", arch, op, err)
				}
				live[lba] = seed
			case r < 75: // read
				lba := uint64(rng.Intn(lbaSpace))
				want, ok := live[lba]
				got, err := srv.Read(lba)
				if !ok {
					if err != ErrNotFound {
						t.Fatalf("%v op %d: read of unwritten %d: %v", arch, op, lba, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%v op %d: read %d: %v", arch, op, lba, err)
				}
				if !bytes.Equal(got, chunkFor(want)) {
					t.Fatalf("%v op %d: lba %d content mismatch", arch, op, lba)
				}
			case r < 80: // flush
				if err := srv.Flush(); err != nil {
					t.Fatalf("%v op %d: flush: %v", arch, op, err)
				}
			case r < 85: // snapshot
				if len(snaps) >= 3 {
					continue
				}
				id, err := srv.CreateSnapshot()
				if err != nil {
					t.Fatalf("%v op %d: snapshot: %v", arch, op, err)
				}
				cp := make(map[uint64]uint64, len(live))
				for k, v := range live {
					cp[k] = v
				}
				snaps[id] = cp
			case r < 90: // read from a snapshot
				for id, model := range snaps {
					lba := uint64(rng.Intn(lbaSpace))
					want, ok := model[lba]
					got, err := srv.ReadSnapshot(id, lba)
					if !ok {
						if err != ErrNotFound {
							t.Fatalf("%v op %d: snap read unwritten: %v", arch, op, err)
						}
						break
					}
					if err != nil || !bytes.Equal(got, chunkFor(want)) {
						t.Fatalf("%v op %d: snapshot %d lba %d mismatch: %v", arch, op, id, lba, err)
					}
					break
				}
			case r < 93: // delete a snapshot
				for id := range snaps {
					if err := srv.DeleteSnapshot(id); err != nil {
						t.Fatalf("%v op %d: delete snapshot: %v", arch, op, err)
					}
					delete(snaps, id)
					break
				}
			case r < 97: // compact
				if _, err := srv.Compact(0.3); err != nil {
					t.Fatalf("%v op %d: compact: %v", arch, op, err)
				}
			default: // checkpoint + recover (only when no snapshots:
				// snapshots are documented as volatile)
				if len(snaps) != 0 {
					continue
				}
				if err := srv.Checkpoint(); err != nil {
					t.Fatalf("%v op %d: checkpoint: %v", arch, op, err)
				}
				rcfg := cfg
				rcfg.TableSSD = srv.tableSSD
				rcfg.DataSSD = srv.dataSSD
				srv2, err := RecoverServer(rcfg)
				if err != nil {
					t.Fatalf("%v op %d: recover: %v", arch, op, err)
				}
				srv = srv2
			}
		}
		// Final audit: every live mapping reads correctly and the
		// volume passes fsck.
		for lba, seed := range live {
			got, err := srv.Read(lba)
			if err != nil || !bytes.Equal(got, chunkFor(seed)) {
				t.Fatalf("%v final: lba %d broken: %v", arch, lba, err)
			}
		}
		rep, err := srv.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("%v final fsck: %v", arch, rep.Problems)
		}
	}
}
