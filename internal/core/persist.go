package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"fidr/internal/engine"
	"fidr/internal/fingerprint"
	"fidr/internal/lbatable"
)

// Metadata durability (extension). The Hash-PBN table is durable by
// construction (write-back bucket cache over the table SSDs); the
// LBA-PBA mapping, reference counts and per-PBN fingerprints live in
// memory. Checkpoint persists them to a reserved table-SSD region after
// flushing all data, and Recover rebuilds a server over the same devices.
//
// Checkpoint region layout at tableSSD[geometry.TableBytes():]:
//
//	magic "FIDRCKP1"
//	u64 lba-snapshot length, snapshot bytes (lbatable format)
//	u64 fingerprint count, 32 B each (PBN order)

var ckpMagic = [8]byte{'F', 'I', 'D', 'R', 'C', 'K', 'P', '1'}

// checkpointOffset is where the checkpoint region begins on the table SSD.
func (s *Server) checkpointOffset() uint64 { return s.geom.TableBytes() }

// Checkpoint flushes all in-flight data (open batches, open containers,
// dirty table-cache lines) and persists the volatile metadata. After a
// successful Checkpoint, RecoverServer over the same SSDs reproduces the
// server's full state.
func (s *Server) Checkpoint() error {
	if err := s.Flush(); err != nil {
		return err
	}
	if err := s.cache.FlushAll(); err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Write(ckpMagic[:])
	snap := s.lba.Snapshot()
	binary.Write(&buf, binary.LittleEndian, uint64(len(snap)))
	buf.Write(snap)
	binary.Write(&buf, binary.LittleEndian, uint64(len(s.pbnFP)))
	for i := range s.pbnFP {
		buf.Write(s.pbnFP[i][:])
	}
	if err := s.tableSSD.Write(s.checkpointOffset(), buf.Bytes()); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	return nil
}

// RecoverServer rebuilds a server from a Checkpoint. cfg must carry the
// original TableSSD and DataSSD and the original UniqueChunkCapacity /
// ContainerSize (the on-SSD geometry is derived from them).
func RecoverServer(cfg Config) (*Server, error) {
	if cfg.TableSSD == nil || cfg.DataSSD == nil {
		return nil, fmt.Errorf("core: recovery requires the original TableSSD and DataSSD")
	}
	// Normalize first so defaults (e.g. the compressor) are available
	// to the recovery path itself.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	off := s.checkpointOffset()
	hdr, err := s.tableSSD.Read(off, 16)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint header: %w", err)
	}
	var magic [8]byte
	copy(magic[:], hdr[:8])
	if magic != ckpMagic {
		return nil, fmt.Errorf("core: no checkpoint found on table SSD")
	}
	snapLen := binary.LittleEndian.Uint64(hdr[8:])
	if snapLen > s.tableSSD.Config().CapacityBytes {
		return nil, fmt.Errorf("core: implausible checkpoint size %d", snapLen)
	}
	snap, err := s.tableSSD.Read(off+16, int(snapLen))
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint body: %w", err)
	}
	lba, err := lbatable.RestoreTable(snap)
	if err != nil {
		return nil, err
	}
	if lba.ContainerSize() != cfg.ContainerSize {
		return nil, fmt.Errorf("core: checkpoint container size %d != config %d",
			lba.ContainerSize(), cfg.ContainerSize)
	}
	fpHdr, err := s.tableSSD.Read(off+16+snapLen, 8)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint fingerprints: %w", err)
	}
	nFP := binary.LittleEndian.Uint64(fpHdr)
	if nFP != lba.Chunks() {
		return nil, fmt.Errorf("core: checkpoint has %d fingerprints for %d chunks", nFP, lba.Chunks())
	}
	fpBytes, err := s.tableSSD.Read(off+24+snapLen, int(nFP)*fingerprint.Size)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint fingerprints: %w", err)
	}
	pbnFP := make([]fingerprint.FP, nFP)
	for i := range pbnFP {
		copy(pbnFP[i][:], fpBytes[i*fingerprint.Size:])
	}
	// Swap in the recovered metadata and resume container allocation
	// where the checkpointed server stopped.
	comp, err := engine.NewCompressionAt(cfg.Compressor, cfg.ContainerSize, lba.NextContainer())
	if err != nil {
		return nil, err
	}
	s.lba = lba
	s.pbnFP = pbnFP
	s.comp = comp
	return s, nil
}
