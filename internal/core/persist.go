package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"fidr/internal/engine"
	"fidr/internal/fingerprint"
	"fidr/internal/lbatable"
	"fidr/internal/metrics/events"
)

// Metadata durability (extension). The Hash-PBN table is durable by
// construction (write-back bucket cache over the table SSDs); the
// LBA-PBA mapping, reference counts and per-PBN fingerprints live in
// memory. Checkpoint persists them to a reserved table-SSD region after
// flushing all data, and Recover rebuilds a server over the same devices.
// With a WAL attached (wal.go), every mutation between checkpoints is
// also logged, and recovery replays the log on top of the checkpoint —
// or from genesis when the volume has records but no checkpoint yet.
//
// Checkpoint region layout at tableSSD[geometry.TableBytes():]:
//
//	magic "FIDRCKP2"
//	u64 WAL sequence number covered by this checkpoint (0: no WAL)
//	u64 lba-snapshot length, snapshot bytes (lbatable format)
//	u64 fingerprint count, 32 B each (PBN order)
//
// The v1 layout ("FIDRCKP1", no sequence field) is still read; it
// implies WAL sequence 0.

var (
	ckpMagic   = [8]byte{'F', 'I', 'D', 'R', 'C', 'K', 'P', '2'}
	ckpMagicV1 = [8]byte{'F', 'I', 'D', 'R', 'C', 'K', 'P', '1'}
)

// ErrNoCheckpoint reports a table volume with no checkpoint (and, when a
// WAL is attached, no log records): not a FIDR volume, or a fresh one.
var ErrNoCheckpoint = errors.New("core: no checkpoint found on table volume")

// ErrCorruptCheckpoint reports a checkpoint that exists but cannot be
// restored: damaged bytes, or a geometry/config mismatch. Distinguish
// from ErrNoCheckpoint with errors.Is.
var ErrCorruptCheckpoint = errors.New("core: corrupt checkpoint on table volume")

// checkpointOffset is where the checkpoint region begins on the table SSD.
func (s *Server) checkpointOffset() uint64 { return s.geom.TableBytes() }

// Checkpoint flushes all in-flight data (open batches, open containers,
// dirty table-cache lines) and persists the volatile metadata. After a
// successful Checkpoint, RecoverServer over the same SSDs reproduces the
// server's full state. With a WAL attached the log is truncated last —
// the checkpoint records the highest WAL sequence it covers, so a crash
// between the two steps cannot double-apply records on recovery.
func (s *Server) Checkpoint() error {
	if err := s.failIfCrashed(); err != nil {
		return err
	}
	if s.chunker != nil {
		return fmt.Errorf("core: checkpoint does not support content-defined chunking (per-chunk raw sizes are not persisted)")
	}
	if err := s.Flush(); err != nil {
		return err
	}
	// First mid-checkpoint window: everything is flushed and WAL-logged,
	// but the checkpoint image is still the old one.
	if err := s.crashPoint(CrashMidCheckpoint); err != nil {
		return err
	}
	if err := s.cache.FlushAll(); err != nil {
		return err
	}
	var walSeq uint64
	if s.wal != nil {
		walSeq = s.wal.LastSeq()
	}
	var buf bytes.Buffer
	buf.Write(ckpMagic[:])
	binary.Write(&buf, binary.LittleEndian, walSeq)
	snap := s.lba.Snapshot()
	binary.Write(&buf, binary.LittleEndian, uint64(len(snap)))
	buf.Write(snap)
	binary.Write(&buf, binary.LittleEndian, uint64(len(s.pbnFP)))
	for i := range s.pbnFP {
		buf.Write(s.pbnFP[i][:])
	}
	if err := s.tableSSD.Write(s.checkpointOffset(), buf.Bytes()); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	// Second mid-checkpoint window: new checkpoint on disk, WAL not yet
	// truncated. Replay must skip records with seq <= walSeq.
	if err := s.crashPoint(CrashMidCheckpoint); err != nil {
		return err
	}
	s.emitEvent(events.Event{
		Type: events.TypeCheckpoint,
		Fields: map[string]int64{
			"wal_seq":        int64(walSeq),
			"snapshot_bytes": int64(len(snap)),
			"fingerprints":   int64(len(s.pbnFP)),
		},
	})
	if s.wal != nil {
		if err := s.wal.Reset(); err != nil {
			return err
		}
		s.emitEvent(events.Event{
			Type:   events.TypeWALTruncate,
			Fields: map[string]int64{"covered_seq": int64(walSeq)},
		})
	}
	s.syncCapacityGauges()
	return nil
}

// RecoveryReport summarizes what RecoverServer did.
type RecoveryReport struct {
	// FromGenesis is true when no checkpoint existed and the state was
	// rebuilt purely from the WAL.
	FromGenesis bool
	// CheckpointSeq is the WAL sequence number the checkpoint covered.
	CheckpointSeq uint64
	// ReplayedRecords counts WAL records applied on top of the
	// checkpoint.
	ReplayedRecords int
	// StaleTableEntriesDropped counts Hash-PBN entries removed because
	// they referenced chunks the recovered metadata does not know — the
	// write-back bucket cache can run ahead of the WAL.
	StaleTableEntriesDropped int
	// OrphanedContainersCleared counts data-SSD containers zeroed
	// because no recovered metadata referenced them (written between
	// the last WAL commit and the crash).
	OrphanedContainersCleared int
}

// LastRecovery reports what the RecoverServer pass that built this
// server did (zero value for servers built with New).
func (s *Server) LastRecovery() RecoveryReport { return s.recovery }

// RecoverServer rebuilds a server from a Checkpoint and, when cfg.WAL is
// set, replays the log over it. cfg must carry the original TableSSD and
// DataSSD and the original UniqueChunkCapacity / ContainerSize (the
// on-SSD geometry is derived from them). The two failure classes are
// errors.Is-distinguishable: ErrNoCheckpoint (nothing to recover) and
// ErrCorruptCheckpoint (a checkpoint that cannot be restored).
func RecoverServer(cfg Config) (*Server, error) {
	if cfg.TableSSD == nil || cfg.DataSSD == nil {
		return nil, fmt.Errorf("core: recovery requires the original TableSSD and DataSSD")
	}
	// Normalize first so defaults (e.g. the compressor) are available
	// to the recovery path itself.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	off := s.checkpointOffset()
	hdr, err := s.tableSSD.Read(off, 24)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint header: %w", err)
	}
	var magic [8]byte
	copy(magic[:], hdr[:8])
	var rr RecoveryReport
	var snapLen, bodyOff uint64
	haveCkp := true
	switch magic {
	case ckpMagic:
		rr.CheckpointSeq = binary.LittleEndian.Uint64(hdr[8:])
		snapLen = binary.LittleEndian.Uint64(hdr[16:])
		bodyOff = off + 24
	case ckpMagicV1:
		snapLen = binary.LittleEndian.Uint64(hdr[8:])
		bodyOff = off + 16
	default:
		haveCkp = false
		if s.wal == nil || s.wal.LastSeq() == 0 {
			return nil, fmt.Errorf("core: table volume %q: %w",
				s.tableSSD.Config().Name, ErrNoCheckpoint)
		}
		// WAL-only recovery: the volume crashed before its first
		// checkpoint. Replay rebuilds everything from genesis.
		rr.FromGenesis = true
	}
	if haveCkp {
		if snapLen > s.tableSSD.Config().CapacityBytes {
			return nil, fmt.Errorf("core: implausible snapshot size %d: %w",
				snapLen, ErrCorruptCheckpoint)
		}
		snap, err := s.tableSSD.Read(bodyOff, int(snapLen))
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint body: %v: %w", err, ErrCorruptCheckpoint)
		}
		lba, err := lbatable.RestoreTable(snap)
		if err != nil {
			return nil, fmt.Errorf("core: %v: %w", err, ErrCorruptCheckpoint)
		}
		if lba.ContainerSize() != cfg.ContainerSize {
			return nil, fmt.Errorf("core: checkpoint container size %d != config %d: %w",
				lba.ContainerSize(), cfg.ContainerSize, ErrCorruptCheckpoint)
		}
		fpHdr, err := s.tableSSD.Read(bodyOff+snapLen, 8)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint fingerprints: %v: %w", err, ErrCorruptCheckpoint)
		}
		nFP := binary.LittleEndian.Uint64(fpHdr)
		if nFP != lba.Chunks() {
			return nil, fmt.Errorf("core: checkpoint has %d fingerprints for %d chunks: %w",
				nFP, lba.Chunks(), ErrCorruptCheckpoint)
		}
		fpBytes, err := s.tableSSD.Read(bodyOff+8+snapLen, int(nFP)*fingerprint.Size)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint fingerprints: %v: %w", err, ErrCorruptCheckpoint)
		}
		pbnFP := make([]fingerprint.FP, nFP)
		for i := range pbnFP {
			copy(pbnFP[i][:], fpBytes[i*fingerprint.Size:])
		}
		s.lba = lba
		s.pbnFP = pbnFP
	}
	// Replay the WAL over the checkpointed (or genesis) state, skipping
	// records the checkpoint already covers.
	if s.wal != nil {
		n, err := s.wal.Replay(rr.CheckpointSeq, s.applyWALRecord)
		if err != nil {
			return nil, err
		}
		rr.ReplayedRecords = n
		s.wal.ensureSeqAfter(rr.CheckpointSeq)
	}
	// Resume container allocation where the recovered state stops.
	comp, err := engine.NewCompressionAt(cfg.Compressor, cfg.ContainerSize, s.lba.NextContainer())
	if err != nil {
		return nil, err
	}
	s.comp = comp
	// Crash repair: the durable Hash-PBN table and the data SSD can both
	// run ahead of the WAL (write-back evictions; container writes whose
	// commit never happened). Drop what the recovered metadata disowns.
	if s.wal != nil {
		dropped, err := s.scrubStaleTable()
		if err != nil {
			return nil, fmt.Errorf("core: table scrub: %w", err)
		}
		rr.StaleTableEntriesDropped = dropped
		cleared, err := s.clearOrphanedContainers()
		if err != nil {
			return nil, fmt.Errorf("core: orphan cleanup: %w", err)
		}
		rr.OrphanedContainersCleared = cleared
	} else {
		// Without a WAL the scrub pass (whose walk counts live table
		// entries exactly) does not run; approximate occupancy by the
		// allocated-PBN count. The count self-corrects at the next scrub.
		s.fpLive = s.lba.Chunks()
	}
	s.recovery = rr
	s.recovered = true
	return s, nil
}

// applyWALRecord applies one replayed mutation. Append re-derives its
// PBN and cross-checks the logged one, so silent divergence between the
// replayed allocation sequence and the original is an error, not
// corruption discovered later.
func (s *Server) applyWALRecord(r WALRecord) error {
	switch r.Kind {
	case WALAppend:
		pbn, err := s.lba.AppendChunk(r.LBA, r.Container, r.Offset, r.CSize)
		if err != nil {
			return err
		}
		if pbn != r.PBN {
			return fmt.Errorf("core: replay allocated PBN %d, log recorded %d", pbn, r.PBN)
		}
		if err := s.cache.Insert(r.FP, pbn); err != nil {
			return err
		}
		for uint64(len(s.pbnFP)) <= pbn {
			s.pbnFP = append(s.pbnFP, fingerprint.FP{})
		}
		s.pbnFP[pbn] = r.FP
		s.fpLive++
		return nil
	case WALMapLBA:
		return s.lba.MapLBA(r.LBA, r.PBN)
	case WALRelocate:
		return s.lba.Relocate(r.PBN, r.Container, r.Offset)
	case WALRetire:
		s.lba.RetireContainer(r.Container)
		return nil
	case WALDeleteFP:
		_, err := s.cache.Delete(r.FP)
		if err == nil && s.fpLive > 0 {
			s.fpLive--
		}
		return err
	default:
		return fmt.Errorf("core: unknown WAL record kind %d", r.Kind)
	}
}

// scrubStaleTable drops Hash-PBN entries referencing chunks the
// recovered metadata does not know: dirty bucket-cache lines evicted to
// the table SSD before the crash can index PBNs whose allocations never
// became durable. Left in place, a later duplicate write would dedup
// against a PBN that now holds different (or no) data.
func (s *Server) scrubStaleTable() (int, error) {
	// The scrub walk visits every live table entry, so it doubles as the
	// exact fingerprint-occupancy recount after recovery.
	var kept uint64
	dropped, err := s.cache.Scrub(func(fp fingerprint.FP, pbn uint64) bool {
		keep := pbn < s.lba.Chunks() && pbn < uint64(len(s.pbnFP)) && s.pbnFP[pbn] == fp
		if keep {
			kept++
		}
		return keep
	})
	if err == nil {
		s.fpLive = kept
	}
	return dropped, err
}

// orphanScanWindow bounds the forward scan for orphaned containers. One
// crash loses at most the containers of one in-flight flush batch, far
// below this bound.
const orphanScanWindow = 64

// clearOrphanedContainers zeroes data-SSD containers past the recovered
// allocation frontier: a crash between a container's data write and its
// WAL commit leaves data no metadata references. Scanning stops at the
// first all-zero container slot.
func (s *Server) clearOrphanedContainers() (int, error) {
	csize := uint64(s.cfg.ContainerSize)
	next := s.lba.NextContainer()
	cleared := 0
	var zeros []byte
	for c := next; c < next+orphanScanWindow; c++ {
		off := c * csize
		if off+csize > s.dataSSD.Config().CapacityBytes {
			break
		}
		data, err := s.dataSSD.Read(off, s.cfg.ContainerSize)
		if err != nil {
			return cleared, err
		}
		if allZero(data) {
			break
		}
		if zeros == nil {
			zeros = make([]byte, s.cfg.ContainerSize)
		}
		if err := s.dataSSD.Write(off, zeros); err != nil {
			return cleared, err
		}
		cleared++
	}
	return cleared, nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
