package core

import (
	"math/rand"
	"testing"

	"fidr/internal/blockcomp"
	"fidr/internal/metrics/events"
)

// Satellite: an empty store has no reduction to report. Convention:
// ReductionRatio() is stored/client and returns 0 when no client bytes
// have arrived (not 1, which would read as "no reduction achieved" on a
// dashboard that never saw a write).
func TestReductionRatioEmptyStore(t *testing.T) {
	var st Stats
	if r := st.ReductionRatio(); r != 0 {
		t.Fatalf("empty-store ReductionRatio = %v, want 0", r)
	}
	st = Stats{ClientBytes: 1000, StoredBytes: 250}
	if r := st.ReductionRatio(); r != 0.25 {
		t.Fatalf("ReductionRatio = %v, want 0.25", r)
	}
}

// driveMixed writes n chunks where half the content repeats, flushing at
// the end so the attribution ledger settles.
func driveMixed(t *testing.T, s *Server, n int) {
	t.Helper()
	sh := blockcomp.NewShaper(0.5)
	for i := 0; i < n; i++ {
		if err := s.Write(uint64(i), sh.Make(uint64(i%(n/2)), 4096)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// The tentpole invariant: after a flush every client write byte is
// attributed to exactly one bucket.
func TestAttributionEquationBalances(t *testing.T) {
	for _, arch := range allArchs() {
		s := newServer(t, arch)
		driveMixed(t, s, 200)
		st := s.Stats()
		if st.LogicalWriteBytes != 200*4096 {
			t.Fatalf("%v: logical = %d, want %d", arch, st.LogicalWriteBytes, 200*4096)
		}
		attributed := st.DedupSavedBytes + st.CompressionSavedBytes + st.StoredBytes
		if attributed != st.LogicalWriteBytes {
			t.Fatalf("%v: attribution unbalanced: dedup %d + comp %d + stored %d = %d, want %d",
				arch, st.DedupSavedBytes, st.CompressionSavedBytes, st.StoredBytes,
				attributed, st.LogicalWriteBytes)
		}
		if st.DedupSavedBytes == 0 || st.CompressionSavedBytes == 0 {
			t.Fatalf("%v: expected both dedup and compression savings: %+v", arch, st)
		}

		r := s.CapacityReport(0.25)
		if r.UnattributedBytes != 0 {
			t.Fatalf("%v: unattributed after flush: %d", arch, r.UnattributedBytes)
		}
		if r.ReductionRatio <= 1 {
			t.Fatalf("%v: reduction ratio %v, want > 1 for a reducible stream", arch, r.ReductionRatio)
		}
		if r.FPLive == 0 || r.FPOccupancy <= 0 {
			t.Fatalf("%v: fingerprint occupancy not tracked: live=%d occ=%v", arch, r.FPLive, r.FPOccupancy)
		}
	}
}

// GC advice must mirror Compact exactly: running Compact at the advised
// threshold reclaims precisely the projected bytes from precisely the
// candidate containers.
func TestGCAdviceMatchesCompact(t *testing.T) {
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 128; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	s.Flush()
	for i := uint64(0); i < 128; i++ {
		if i%4 != 0 {
			s.Write(i, sh.Make(20000+i, 4096))
		}
	}
	s.Flush()

	const th = 0.25
	adv := s.CapacityReport(th).GC
	if !adv.Recommended || adv.CandidateContainers == 0 {
		t.Fatalf("no GC recommended despite heavy overwrites: %+v", adv)
	}
	deadBefore := s.Garbage().TotalDeadBytes
	res, err := s.Compact(th)
	if err != nil {
		t.Fatal(err)
	}
	if res.ContainersCompacted != adv.CandidateContainers {
		t.Fatalf("advice promised %d containers, Compact took %d",
			adv.CandidateContainers, res.ContainersCompacted)
	}
	// ProjectedReclaimBytes counts dead bytes, which is exactly what the
	// garbage ledger drops by; BytesReclaimed counts whole retired
	// containers.
	if got := deadBefore - s.Garbage().TotalDeadBytes; got != adv.ProjectedReclaimBytes {
		t.Fatalf("advice projected %d dead bytes, ledger dropped %d",
			adv.ProjectedReclaimBytes, got)
	}
	if want := uint64(res.ContainersCompacted) * uint64(s.cfg.ContainerSize); res.BytesReclaimed != want {
		t.Fatalf("BytesReclaimed %d, want %d retired containers * %d",
			res.BytesReclaimed, res.ContainersCompacted, s.cfg.ContainerSize)
	}
	// With the garbage gone the same threshold must stop recommending.
	if again := s.CapacityReport(th).GC; again.Recommended && again.ProjectedReclaimBytes >= adv.ProjectedReclaimBytes {
		t.Fatalf("advice did not shrink after compaction: %+v", again)
	}
}

// The heatmap is a re-bucketing of the garbage ledger: its dead bytes
// must sum to the ledger total, cell by cell.
func TestHeatmapSumsToGarbageLedger(t *testing.T) {
	s := gcServer(t, FIDRFull)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 128; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	s.Flush()
	for i := uint64(0); i < 64; i++ {
		s.Write(i, sh.Make(30000+i, 4096))
	}
	s.Flush()

	hm := s.ContainerHeatmap()
	if hm.Containers == 0 || len(hm.Buckets) == 0 {
		t.Fatalf("empty heatmap: %+v", hm)
	}
	if want := s.Garbage().TotalDeadBytes; hm.DeadBytes != want {
		t.Fatalf("heatmap dead %d != garbage ledger %d", hm.DeadBytes, want)
	}
	var cells, dead, live uint64
	var containers int
	for _, b := range hm.Buckets {
		if b.AgeBand < 0 || b.AgeBand >= heatAgeBands {
			t.Fatalf("bad age band: %+v", b)
		}
		if b.DeadFracLo < 0 || b.DeadFracHi > 1 || b.DeadFracLo >= b.DeadFracHi {
			t.Fatalf("bad dead-fraction range: %+v", b)
		}
		containers += b.Containers
		dead += b.DeadBytes
		live += b.LiveBytes
		cells++
	}
	if dead != hm.DeadBytes || live != hm.LiveBytes {
		t.Fatalf("buckets sum live=%d dead=%d, header live=%d dead=%d",
			live, dead, hm.LiveBytes, hm.DeadBytes)
	}
	if containers+hm.Retired != hm.Containers {
		t.Fatalf("buckets hold %d containers + %d retired, header says %d",
			containers, hm.Retired, hm.Containers)
	}

	// After compaction the victims move to Retired and out of the cells;
	// the remaining dead bytes still reconcile with the ledger.
	res, err := s.Compact(0.25)
	if err != nil {
		t.Fatal(err)
	}
	hm = s.ContainerHeatmap()
	if hm.Retired != res.ContainersCompacted {
		t.Fatalf("retired %d != compacted %d", hm.Retired, res.ContainersCompacted)
	}
	if want := s.Garbage().TotalDeadBytes; hm.DeadBytes != want {
		t.Fatalf("post-GC heatmap dead %d != ledger %d", hm.DeadBytes, want)
	}
}

// Satellite: the Compact accounting invariant, as a property over
// randomized overwrite workloads. Reclaimed bytes must equal the drop in
// the per-container dead-byte totals AND the drop in the
// capacity.garbage_bytes gauge.
func TestCompactAccountingInvariantProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := gcServer(t, FIDRFull)
		reg := s.EnableObservability(nil, 4)
		sh := blockcomp.NewShaper(0.3 + rng.Float64()*0.5)
		lbas := 64 + rng.Intn(128)
		writes := lbas * (2 + rng.Intn(3))
		for i := 0; i < writes; i++ {
			lba := uint64(rng.Intn(lbas))
			if err := s.Write(lba, sh.Make(rng.Uint64()%5000, 4096)); err != nil {
				t.Fatalf("seed %d write %d: %v", seed, i, err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}

		deadBefore := s.Garbage().TotalDeadBytes
		gaugeBefore := uint64(reg.Gauge("capacity.garbage_bytes").Value())
		if gaugeBefore != deadBefore {
			t.Fatalf("seed %d: gauge %d != ledger %d before GC", seed, gaugeBefore, deadBefore)
		}
		th := rng.Float64() * 0.5
		res, err := s.Compact(th)
		if err != nil {
			t.Fatalf("seed %d compact: %v", seed, err)
		}
		deadAfter := s.Garbage().TotalDeadBytes
		// The dead bytes the ledger dropped are exactly the ones the
		// stats attribute to this pass; retired-capacity accounting is
		// whole containers.
		if st := s.Stats(); deadBefore-deadAfter != st.ReclaimedDeadBytes {
			t.Fatalf("seed %d: ledger dropped %d, stats reclaimed %d",
				seed, deadBefore-deadAfter, st.ReclaimedDeadBytes)
		}
		if want := uint64(res.ContainersCompacted) * uint64(s.cfg.ContainerSize); res.BytesReclaimed != want {
			t.Fatalf("seed %d: BytesReclaimed %d, want %d containers * %d",
				seed, res.BytesReclaimed, res.ContainersCompacted, s.cfg.ContainerSize)
		}
		gaugeAfter := uint64(reg.Gauge("capacity.garbage_bytes").Value())
		if gaugeAfter != deadAfter {
			t.Fatalf("seed %d: gauge %d != ledger %d after GC", seed, gaugeAfter, deadAfter)
		}
	}
}

// A compaction pass lands in the event journal with its result fields.
func TestGCRunEventEmitted(t *testing.T) {
	s := gcServer(t, FIDRFull)
	j := events.NewJournal(16)
	s.SetEventJournal(j, 3)
	sh := blockcomp.NewShaper(0.5)
	for i := uint64(0); i < 128; i++ {
		s.Write(i, sh.Make(i, 4096))
	}
	s.Flush()
	for i := uint64(0); i < 96; i++ {
		s.Write(i, sh.Make(40000+i, 4096))
	}
	s.Flush()
	res, err := s.Compact(0.25)
	if err != nil {
		t.Fatal(err)
	}
	evs := j.Since(0)
	if len(evs) != 1 {
		t.Fatalf("journal has %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Type != events.TypeGCRun || ev.Group != 3 {
		t.Fatalf("unexpected event: %+v", ev)
	}
	if got := ev.Fields["bytes_reclaimed"]; got != int64(res.BytesReclaimed) {
		t.Fatalf("event bytes_reclaimed = %d, want %d", got, res.BytesReclaimed)
	}
	if got := ev.Fields["containers_compacted"]; got != int64(res.ContainersCompacted) {
		t.Fatalf("event containers_compacted = %d, want %d", got, res.ContainersCompacted)
	}
}

// Cluster-style merges: reports sum field-wise with ratios re-derived,
// heatmaps merge cell-wise.
func TestMergeCapacityReportsAndHeatmaps(t *testing.T) {
	var ss [2]*Server
	for i := range ss {
		ss[i] = gcServer(t, FIDRFull)
		sh := blockcomp.NewShaper(0.5)
		base := uint64(i * 100000)
		for j := uint64(0); j < 96; j++ {
			ss[i].Write(j, sh.Make(base+j%48, 4096))
		}
		ss[i].Flush()
		for j := uint64(0); j < 32; j++ {
			ss[i].Write(j, sh.Make(base+60000+j, 4096))
		}
		ss[i].Flush()
	}
	r0, r1 := ss[0].CapacityReport(0.25), ss[1].CapacityReport(0.25)
	m := MergeCapacityReports(r0, r1)
	if m.LogicalWriteBytes != r0.LogicalWriteBytes+r1.LogicalWriteBytes {
		t.Fatalf("merged logical %d != %d + %d", m.LogicalWriteBytes, r0.LogicalWriteBytes, r1.LogicalWriteBytes)
	}
	if got := m.DedupSavedBytes + m.CompressionSavedBytes + m.StoredBytes + m.UnattributedBytes; got != m.LogicalWriteBytes {
		t.Fatalf("merged attribution unbalanced: %d != %d", got, m.LogicalWriteBytes)
	}
	if m.GarbageBytes != r0.GarbageBytes+r1.GarbageBytes {
		t.Fatalf("merged garbage %d", m.GarbageBytes)
	}
	if m.GC.Threshold != 0.25 || m.GC.Recommended != (r0.GC.Recommended || r1.GC.Recommended) {
		t.Fatalf("merged GC advice: %+v", m.GC)
	}
	wantRatio := float64(m.LogicalWriteBytes) / float64(m.StoredBytes+m.UnattributedBytes)
	if m.ReductionRatio != wantRatio {
		t.Fatalf("merged ratio %v, want %v", m.ReductionRatio, wantRatio)
	}

	h0, h1 := ss[0].ContainerHeatmap(), ss[1].ContainerHeatmap()
	hm := MergeHeatmaps(h0, h1)
	if hm.Containers != h0.Containers+h1.Containers {
		t.Fatalf("merged containers %d", hm.Containers)
	}
	if hm.DeadBytes != h0.DeadBytes+h1.DeadBytes {
		t.Fatalf("merged dead %d", hm.DeadBytes)
	}
	var dead uint64
	for _, b := range hm.Buckets {
		dead += b.DeadBytes
	}
	if dead != hm.DeadBytes {
		t.Fatalf("merged buckets dead %d != header %d", dead, hm.DeadBytes)
	}
}
