package core

import (
	"bytes"
	"math/rand"
	"testing"

	"fidr/internal/chunk"
)

// cdcTestConfig builds a small CDC server config.
func cdcTestConfig(arch Arch) Config {
	cfg := DefaultConfig(arch)
	cfg.ContainerSize = 1 << 18
	cfg.Chunking = chunk.Config{Mode: chunk.ModeCDC, Min: 1024, Avg: 4096, Max: 16384}
	return cfg
}

// cdcStream builds a duplicate-rich byte stream: a random base segment
// repeated with a few bytes inserted near the front, the backup-
// generation shape content-defined chunking exists for.
func cdcStream(t *testing.T, size int) ([]byte, []byte) {
	t.Helper()
	base := make([]byte, size)
	rand.New(rand.NewSource(77)).Read(base)
	shifted := append(append([]byte("gen2-hdr"), base[:3000]...), base[3000:]...)
	return base, shifted
}

// TestCDCStreamRoundTrip drives variable-size chunks end to end on both
// architectures: stream writes through the chunker, dedup, compression
// and container packing, then reads every extent back bit-exact and
// checks the reduction-attribution ledger balances.
func TestCDCStreamRoundTrip(t *testing.T) {
	for _, arch := range []Arch{Baseline, FIDRNicP2P, FIDRFull} {
		t.Run(arch.String(), func(t *testing.T) {
			s, err := New(cdcTestConfig(arch))
			if err != nil {
				t.Fatal(err)
			}
			base, shifted := cdcStream(t, 200<<10)

			// Two streams in disjoint extent spaces: generation 2 repeats
			// generation 1 with an 8-byte insertion at the front.
			const gen2Base = 1 << 32
			if err := s.Write(0, base); err != nil {
				t.Fatal(err)
			}
			if err := s.Write(gen2Base, shifted); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}

			// The server's cuts are reproducible client-side: the same
			// chunker configuration yields the extent addresses.
			c := chunk.NewCDC(1024, 4096, 16384)
			for _, st := range []struct {
				baseOff uint64
				data    []byte
			}{{0, base}, {gen2Base, shifted}} {
				prev := 0
				for _, b := range c.Boundaries(st.data) {
					got, err := s.Read(st.baseOff + uint64(prev))
					if err != nil {
						t.Fatalf("read extent %d: %v", prev, err)
					}
					if !bytes.Equal(got, st.data[prev:b]) {
						t.Fatalf("extent %d: read %d bytes, mismatch with stream slice [%d:%d)", prev, len(got), prev, b)
					}
					prev = b
				}
			}

			st := s.Stats()
			if st.DuplicateChunks == 0 {
				t.Fatalf("no duplicate chunks across repeated generations: %+v", st)
			}
			if want := uint64(len(base) + len(shifted)); st.LogicalWriteBytes != want {
				t.Fatalf("LogicalWriteBytes = %d, want %d", st.LogicalWriteBytes, want)
			}
			// CDC resynchronizes after the insertion, so most of gen2
			// should dedup against gen1.
			if st.DedupSavedBytes < uint64(len(shifted))/2 {
				t.Errorf("DedupSavedBytes = %d, want at least half of gen2 (%d)", st.DedupSavedBytes, len(shifted)/2)
			}
			if got := st.DedupSavedBytes + st.CompressionSavedBytes + st.StoredBytes; got != st.LogicalWriteBytes {
				t.Errorf("ledger unbalanced after flush: dedup %d + comp %d + stored %d = %d != logical %d",
					st.DedupSavedBytes, st.CompressionSavedBytes, st.StoredBytes, got, st.LogicalWriteBytes)
			}

			rep, err := s.Verify()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("verify: %v", rep.Problems)
			}
		})
	}
}

// TestCDCStreamResumesAcrossBufferDrains shrinks the NIC buffer so one
// segment overflows it repeatedly: the stream must drain mid-segment and
// resume at a chunk boundary with the same cuts a whole-stream chunker
// produces.
func TestCDCStreamResumesAcrossBufferDrains(t *testing.T) {
	cfg := cdcTestConfig(FIDRNicP2P)
	cfg.NICBufferBytes = 4 * cfg.Chunking.Max // minimum Validate allows
	cfg.BatchChunks = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(3)).Read(data)
	if err := s.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	c := chunk.NewCDC(1024, 4096, 16384)
	bounds := c.Boundaries(data)
	prev := 0
	for _, b := range bounds {
		got, err := s.Read(uint64(prev))
		if err != nil {
			t.Fatalf("read extent %d: %v", prev, err)
		}
		if !bytes.Equal(got, data[prev:b]) {
			t.Fatalf("extent %d mismatch", prev)
		}
		prev = b
	}
	if st := s.Stats(); st.UniqueChunks+st.DuplicateChunks != uint64(len(bounds)) {
		t.Fatalf("processed %d chunks, whole-stream chunker cut %d",
			st.UniqueChunks+st.DuplicateChunks, len(bounds))
	}
}

// TestCDCConfigGates pins the unsupported combinations: CDC + WAL and
// CDC + Checkpoint are rejected (per-chunk raw sizes are not persisted),
// and oversized Max chunks cannot outgrow the 16-bit compressed-size
// field.
func TestCDCConfigGates(t *testing.T) {
	cfg := cdcTestConfig(FIDRNicP2P)
	cfg.Chunking.Max = 1 << 16
	cfg.Chunking.Avg = 1 << 15
	if _, err := New(cfg); err == nil {
		t.Error("Max beyond the storable compressed size was accepted")
	}

	cfg = cdcTestConfig(FIDRNicP2P)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err == nil {
		t.Error("Checkpoint on a CDC server was accepted")
	}
	if _, err := s.ReadRange(0, 2); err == nil {
		t.Error("ReadRange on a CDC server was accepted")
	}
	if err := s.Write(0, nil); err == nil {
		t.Error("empty stream write was accepted")
	}
}
