// Package lanes is the fork-join primitive behind the paper's
// accelerator arrays. The FIDR NIC carries an array of SHA-256 hash
// cores and the Compression Engine an array of LZ77 pipelines; this
// package models each array as a pool of worker goroutines ("lanes")
// that a batch fans out across.
//
// Two properties make the model faithful and safe:
//
//   - Deterministic work assignment. Item i always runs on lane
//     i mod k, so a run's lane schedule is a pure function of the batch,
//     never of goroutine timing.
//   - Fork-join scope. Run returns only after every lane finishes, so
//     callers commit results strictly in item order after the join and
//     the surrounding code stays single-threaded. Parallelism never
//     leaks past the accelerator boundary.
//
// Per-lane busy time is returned for the duty-cycle accounting plane
// (nic.hash_lane_busy_ns, engine.compress_lane_busy_ns).
package lanes

import (
	"runtime"
	"sync"
	"time"
)

// maxDefault bounds the GOMAXPROCS-derived lane count: the paper's
// largest array is 16 SHA cores, and fan-out past the core count only
// adds scheduling overhead.
const maxDefault = 16

// Default returns the GOMAXPROCS-derived lane count used when a
// configuration leaves the lane count at zero.
func Default() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxDefault {
		n = maxDefault
	}
	return n
}

// Normalize resolves a configured lane count: zero or negative selects
// Default.
func Normalize(n int) int {
	if n <= 0 {
		return Default()
	}
	return n
}

// Clamp bounds a lane count by the number of work items (spawning more
// lanes than items is pure overhead). The result is at least 1.
func Clamp(lanesN, items int) int {
	lanesN = Normalize(lanesN)
	if lanesN > items {
		lanesN = items
	}
	if lanesN < 1 {
		lanesN = 1
	}
	return lanesN
}

// Run fans items [0, n) out across k lanes and blocks until all lanes
// finish. Lane l processes items l, l+k, l+2k, ... in ascending order,
// so the item->lane assignment is deterministic. fn must only touch
// state owned by its item (distinct slice elements are fine); cross-item
// state must wait for Run to return.
//
// The returned slice holds each lane's busy time, for accelerator
// duty-cycle accounting. With k <= 1 (or n <= 1) the work runs inline on
// the calling goroutine.
func Run(n, k int, fn func(lane, item int)) []time.Duration {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k <= 1 {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return []time.Duration{time.Since(start)}
	}
	busy := make([]time.Duration, k)
	var wg sync.WaitGroup
	wg.Add(k)
	for l := 0; l < k; l++ {
		go func(l int) {
			defer wg.Done()
			start := time.Now()
			for i := l; i < n; i += k {
				fn(l, i)
			}
			busy[l] = time.Since(start)
		}(l)
	}
	wg.Wait()
	return busy
}

// Total sums per-lane busy durations (the accelerator-array busy time;
// it can exceed wall time when lanes overlap).
func Total(busy []time.Duration) time.Duration {
	var t time.Duration
	for _, d := range busy {
		t += d
	}
	return t
}
