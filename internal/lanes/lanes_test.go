package lanes

import (
	"sync/atomic"
	"testing"
)

func TestNormalizeAndClamp(t *testing.T) {
	if Normalize(0) != Default() || Normalize(-3) != Default() {
		t.Fatal("zero/negative lanes must select the default")
	}
	if Normalize(5) != 5 {
		t.Fatal("explicit lane count not honored")
	}
	if got := Clamp(8, 3); got != 3 {
		t.Fatalf("Clamp(8,3) = %d", got)
	}
	if got := Clamp(2, 100); got != 2 {
		t.Fatalf("Clamp(2,100) = %d", got)
	}
	if got := Clamp(4, 0); got != 1 {
		t.Fatalf("Clamp(4,0) = %d", got)
	}
	if Default() < 1 {
		t.Fatal("default lane count < 1")
	}
}

func TestRunCoversEveryItemExactlyOnce(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8, 100} {
		const n = 57
		var hits [n]int32
		busy := Run(n, k, func(_, i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("k=%d: item %d ran %d times", k, i, h)
			}
		}
		wantLanes := k
		if wantLanes > n {
			wantLanes = n
		}
		if len(busy) != wantLanes {
			t.Fatalf("k=%d: %d busy entries", k, len(busy))
		}
	}
}

func TestRunDeterministicLaneAssignment(t *testing.T) {
	const n, k = 40, 4
	lane := make([]int32, n)
	Run(n, k, func(l, i int) { atomic.StoreInt32(&lane[i], int32(l)) })
	for i := 0; i < n; i++ {
		if int(lane[i]) != i%k {
			t.Fatalf("item %d ran on lane %d, want %d", i, lane[i], i%k)
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if got := Run(0, 4, func(_, _ int) { t.Fatal("fn called for n=0") }); got != nil {
		t.Fatal("n=0 should return nil busy slice")
	}
	ran := 0
	busy := Run(1, 8, func(l, i int) {
		if l != 0 || i != 0 {
			t.Fatalf("single item on lane %d item %d", l, i)
		}
		ran++
	})
	if ran != 1 || len(busy) != 1 {
		t.Fatalf("single-item run: ran=%d busy=%d", ran, len(busy))
	}
	if Total(busy) < 0 {
		t.Fatal("negative busy total")
	}
}
