package fidr_test

import (
	"path/filepath"
	"testing"

	"fidr"
	"fidr/internal/core"
	"fidr/internal/metrics"
	"fidr/internal/trace/span"
)

// TestAsyncTraceTree drives traced writes through the full front-end
// stack — async queue, worker-owned server, batch pipeline, WAL — and
// checks the resulting span tree: async.queue parents the core request,
// the batch trace links under the tipping request, and the WAL fsync
// appears as a batch child.
func TestAsyncTraceTree(t *testing.T) {
	cfg := fidr.DefaultConfig(fidr.FIDRFull)
	cfg.BatchChunks = 4
	wal, err := core.OpenWALFile(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL = wal
	srv, err := fidr.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.EnableObservability(nil, 16)
	col := span.NewCollector(64)
	srv.SetSpanCollector(col, 0)

	a, err := fidr.NewAsync(srv, 8)
	if err != nil {
		t.Fatal(err)
	}
	a.EnableObservability(metrics.NewRegistry())
	a.SetSpanCollector(col)

	sc := span.Context{Trace: span.NewTraceID(), Parent: span.NewSpanID(), Sampled: true}
	for i := uint64(0); i < 4; i++ {
		if r := <-a.WriteCtx(i, fidr.MakeChunk(i, 0.5), sc); r.Err != nil {
			t.Fatalf("write %d: %v", i, r.Err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	spans := col.Trace(sc.Trace)
	if len(spans) == 0 {
		t.Fatal("trace missing from collector")
	}
	byID := map[span.SpanID]span.Span{}
	count := map[string]int{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		count[sp.Name]++
	}
	if count["async.queue"] != 4 || count["core.awrite"] != 4 {
		t.Fatalf("span counts = %v, want 4 async.queue and 4 core.awrite", count)
	}
	for _, want := range []string{"core.batch", "hash", "dedup_lookup", "wal_fsync", "nic_buffer"} {
		if count[want] == 0 {
			t.Fatalf("no %q span in trace: %v", want, count)
		}
	}
	// Parentage: every core.awrite hangs under an async.queue span,
	// every async.queue under the client's context, and the batch under
	// one of the request roots.
	var reqRoots []span.SpanID
	for _, sp := range spans {
		switch sp.Name {
		case "core.awrite":
			p, ok := byID[sp.Parent]
			if !ok || p.Name != "async.queue" {
				t.Fatalf("core.awrite parent %s is not an async.queue span", sp.Parent)
			}
			reqRoots = append(reqRoots, sp.ID)
		case "async.queue":
			if sp.Parent != sc.Parent {
				t.Fatalf("async.queue parent %s != client span %s", sp.Parent, sc.Parent)
			}
		}
	}
	for _, sp := range spans {
		if sp.Name != "core.batch" {
			continue
		}
		ok := false
		for _, r := range reqRoots {
			if sp.Parent == r {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("core.batch parent %s is not one of the request roots", sp.Parent)
		}
	}
	// The WAL fsync hangs under the batch span.
	for _, sp := range spans {
		if sp.Name != "wal_fsync" {
			continue
		}
		p, ok := byID[sp.Parent]
		if !ok || p.Name != "core.batch" {
			t.Fatalf("wal_fsync parent %s is not the batch span", sp.Parent)
		}
	}

	// Rendered tree nests the pipeline under the queue spans.
	text := span.Render(spans)
	for _, want := range []string{"async.queue", "core.awrite", "core.batch", "wal_fsync"} {
		if !contains(text, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, text)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestAsyncStoreRange: the AsyncStore adapter serves the proto.Store
// surface over the queues, preserving chunk order across groups.
func TestAsyncStoreRange(t *testing.T) {
	cl, err := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fidr.NewAsync(cl, 8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := fidr.NewAsyncStore(a, cl.ChunkSize())
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunkSize() != cl.ChunkSize() {
		t.Fatalf("chunk size %d", st.ChunkSize())
	}
	want := make([][]byte, 8)
	for i := range want {
		want[i] = fidr.MakeChunk(uint64(100+i), 0.5)
		if err := st.Write(uint64(i), want[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.ReadRange(0, len(want))
	if err != nil {
		t.Fatal(err)
	}
	cs := st.ChunkSize()
	for i := range want {
		if string(got[i*cs:(i+1)*cs]) != string(want[i]) {
			t.Fatalf("range chunk %d corrupted", i)
		}
	}
	if _, err := st.ReadRange(0, 0); err == nil {
		t.Fatal("zero-chunk range accepted")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
