package fidr

import (
	"fmt"

	"fidr/internal/trace/span"
)

// AsyncStore adapts an Async front-end to the chunk-store surface the
// protocol listener serves (proto.Store plus its traced extension).
// With this front, the listener no longer needs its cross-connection
// mutex: submissions are queue sends, and the per-group workers own the
// servers — pass proto.WithConcurrentStore when serving one.
type AsyncStore struct {
	a         *Async
	chunkSize int
}

// NewAsyncStore wraps a. chunkSize must match the underlying store's
// chunk size.
func NewAsyncStore(a *Async, chunkSize int) (*AsyncStore, error) {
	if chunkSize < 1 {
		return nil, fmt.Errorf("fidr: chunk size %d", chunkSize)
	}
	return &AsyncStore{a: a, chunkSize: chunkSize}, nil
}

// ChunkSize reports the store's chunk size.
func (s *AsyncStore) ChunkSize() int { return s.chunkSize }

// Write submits through the queue and waits.
func (s *AsyncStore) Write(lba uint64, data []byte) error {
	return (<-s.a.WriteCtx(lba, data, span.Context{})).Err
}

// Read submits through the queue and waits.
func (s *AsyncStore) Read(lba uint64) ([]byte, error) {
	r := <-s.a.ReadCtx(lba, span.Context{})
	return r.Data, r.Err
}

// ReadRange fans the chunk reads through the queues (they may resolve
// on different groups) and concatenates in LBA order.
func (s *AsyncStore) ReadRange(lba uint64, n int) ([]byte, error) {
	return s.ReadRangeSpan(lba, n, span.Context{})
}

// WriteSpan is Write with a wire trace context.
func (s *AsyncStore) WriteSpan(lba uint64, data []byte, sc span.Context) error {
	return (<-s.a.WriteCtx(lba, data, sc)).Err
}

// ReadSpan is Read with a wire trace context.
func (s *AsyncStore) ReadSpan(lba uint64, sc span.Context) ([]byte, error) {
	r := <-s.a.ReadCtx(lba, sc)
	return r.Data, r.Err
}

// ReadRangeSpan is ReadRange with a wire trace context shared by every
// chunk read.
func (s *AsyncStore) ReadRangeSpan(lba uint64, n int, sc span.Context) ([]byte, error) {
	if n < 1 {
		return nil, fmt.Errorf("fidr: read of %d chunks", n)
	}
	chans := make([]<-chan AsyncResult, n)
	for i := 0; i < n; i++ {
		chans[i] = s.a.ReadCtx(lba+uint64(i), sc)
	}
	out := make([]byte, 0, n*s.chunkSize)
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			return nil, fmt.Errorf("fidr: range chunk %d: %w", i, r.Err)
		}
		out = append(out, r.Data...)
	}
	return out, nil
}
