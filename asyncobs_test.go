package fidr_test

import (
	"testing"

	"fidr"
	"fidr/internal/metrics"
)

// TestAsyncQueueWaitObserved checks the front-end's own metrics and the
// queue-wait propagation into the back-end's stage histograms and
// request traces.
func TestAsyncQueueWaitObserved(t *testing.T) {
	c, err := fidr.NewCluster(fidr.DefaultConfig(fidr.FIDRFull), 2)
	if err != nil {
		t.Fatal(err)
	}
	view := c.EnableObservability(64)
	a, err := fidr.NewAsync(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	areg := metrics.NewRegistry()
	a.EnableObservability(areg)

	const n = 200
	results := make([]<-chan fidr.AsyncResult, 0, n)
	for i := uint64(0); i < n; i++ {
		results = append(results, a.WriteAsync(i, fidr.MakeChunk(i%20, 0.5)))
	}
	for i := uint64(0); i < n/2; i++ {
		results = append(results, a.ReadAsync(i))
	}
	for _, ch := range results[:n] {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	for _, ch := range results[n:] {
		// Reads may race ahead of their writes; errors are fine, the
		// metrics are what is under test.
		<-ch
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Front-end counters.
	if got := areg.Counter("async.writes").Value(); got != n {
		t.Errorf("async.writes = %d, want %d", got, n)
	}
	if got := areg.Counter("async.reads").Value(); got != n/2 {
		t.Errorf("async.reads = %d, want %d", got, n/2)
	}
	if got := areg.Histogram("async.queue_wait.ns").Count(); got != n+n/2 {
		t.Errorf("async.queue_wait.ns count = %d, want %d", got, n+n/2)
	}
	if got := areg.Gauge("async.inflight").Value(); got != 0 {
		t.Errorf("async.inflight = %v after drain, want 0", got)
	}

	// Back-end: the queue wait crossed into the merged stage histograms
	// and the per-request traces carry the awrite/aread ops.
	var queueWait metrics.HistogramSnapshot
	for _, m := range view.Snapshot() {
		if m.Name == "stage.queue_wait.ns" {
			queueWait = m.Hist
		}
	}
	if queueWait.Count != n+n/2 {
		t.Errorf("stage.queue_wait.ns count = %d, want %d", queueWait.Count, n+n/2)
	}
	var awrites, areads int
	for _, tr := range c.RecentTraces() {
		switch tr.Op {
		case "awrite":
			awrites++
		case "aread":
			areads++
		}
	}
	if awrites == 0 || areads == 0 {
		t.Errorf("traces: %d awrite, %d aread; queue ops not tagged", awrites, areads)
	}
}
