package fidr_test

import (
	"bytes"
	"strings"
	"testing"

	"fidr"
)

func TestFacadeServerRoundTrip(t *testing.T) {
	srv, err := fidr.NewServer(fidr.DefaultConfig(fidr.FIDRFull))
	if err != nil {
		t.Fatal(err)
	}
	chunk := fidr.MakeChunk(7, 0.5)
	if len(chunk) != fidr.ChunkSize {
		t.Fatalf("chunk size %d", len(chunk))
	}
	if err := srv.Write(1, chunk); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Read(1)
	if err != nil || !bytes.Equal(got, chunk) {
		t.Fatal("facade round trip failed")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	for _, p := range []fidr.Workload{fidr.WriteH(100), fidr.WriteM(100), fidr.WriteL(100), fidr.ReadMixed(100)} {
		gen, err := fidr.NewWorkload(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		n := 0
		for {
			if _, ok := gen.Next(); !ok {
				break
			}
			n++
		}
		if n != 100 {
			t.Fatalf("%s: generated %d", p.Name, n)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	names := fidr.Experiments()
	if len(names) < 15 {
		t.Fatalf("only %d experiments registered", len(names))
	}
	// All 15 paper artifacts present.
	for _, want := range []string{"fig3", "fig4", "fig5", "table1", "table2", "table3",
		"fig11", "fig12", "fig13", "fig14", "latency", "table4", "table5", "fig15", "fig16"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := fidr.RunExperiment("bogus", 0); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentCheapOnes(t *testing.T) {
	// The cheap artifacts run quickly enough for unit tests; the rest
	// are covered by internal/experiments tests and the bench harness.
	for _, name := range []string{"latency", "table4"} {
		out, err := fidr.RunExperiment(name, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out, "==") {
			t.Fatalf("%s: no table rendered:\n%s", name, out)
		}
	}
	out, err := fidr.RunExperiment("fig3", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 3") {
		t.Fatal("fig3 table missing title")
	}
}

func TestMakeChunkDeterministic(t *testing.T) {
	if !bytes.Equal(fidr.MakeChunk(1, 0.5), fidr.MakeChunk(1, 0.5)) {
		t.Fatal("MakeChunk not deterministic")
	}
	if bytes.Equal(fidr.MakeChunk(1, 0.5), fidr.MakeChunk(2, 0.5)) {
		t.Fatal("MakeChunk ignores seed")
	}
}
