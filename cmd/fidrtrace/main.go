// Command fidrtrace generates Table 3 workload traces as files for
// fidrcli replay or offline analysis.
//
// Usage:
//
//	fidrtrace -workload write-h -ios 100000 -out write-h.trc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"fidr/internal/trace"
)

func main() {
	workload := flag.String("workload", "write-h", "write-h, write-m, write-l, read-mixed, archival")
	ios := flag.Int("ios", 100000, "number of requests")
	out := flag.String("out", "", "output trace file (required)")
	flag.Parse()
	if *out == "" {
		log.Fatal("fidrtrace: -out is required")
	}
	var p trace.Params
	switch strings.ToLower(*workload) {
	case "write-h":
		p = trace.WriteH(*ios)
	case "write-m":
		p = trace.WriteM(*ios)
	case "write-l":
		p = trace.WriteL(*ios)
	case "read-mixed":
		p = trace.ReadMixed(*ios)
	case "archival":
		p = trace.Archival(*ios)
	default:
		log.Fatalf("fidrtrace: unknown workload %q", *workload)
	}
	gen, err := trace.NewGenerator(p)
	if err != nil {
		log.Fatalf("fidrtrace: %v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("fidrtrace: %v", err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		log.Fatalf("fidrtrace: %v", err)
	}
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.Write(req); err != nil {
			log.Fatalf("fidrtrace: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatalf("fidrtrace: %v", err)
	}
	fmt.Printf("%s: %d requests (observed dedup %.3f) -> %s\n",
		p.Name, w.Count(), gen.DedupObserved(), *out)
}
