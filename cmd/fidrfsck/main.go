// Command fidrfsck checks a durable FIDR volume offline: it recovers the
// server state from the checkpoint on the table volume and runs the full
// consistency pass (metadata invariants, reference counts, content
// re-hashing against the Hash-PBN table).
//
// Usage:
//
//	fidrfsck -data-file vol.data -table-file vol.table
//
// Exit status 0 means consistent; 1 means problems were found (each is
// printed); 2 means the volumes could not be opened or recovered.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fidr"
	"fidr/internal/core"
	"fidr/internal/ssd"
)

func main() {
	dataFile := flag.String("data-file", "", "file-backed data volume (required)")
	tableFile := flag.String("table-file", "", "file-backed table volume (required)")
	gc := flag.Bool("gc", false, "also report reclaimable garbage per container")
	flag.Parse()
	if *dataFile == "" || *tableFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	dcfg := ssd.Samsung970Pro("data-ssd")
	dcfg.BackingFile = *dataFile
	dev, err := ssd.New(dcfg)
	if err != nil {
		log.Printf("fidrfsck: %v", err)
		os.Exit(2)
	}
	defer dev.Close()
	tcfg := ssd.Samsung970Pro("table-ssd")
	tcfg.BackingFile = *tableFile
	tcfg.CapacityBytes = 1 << 40
	tdev, err := ssd.New(tcfg)
	if err != nil {
		log.Printf("fidrfsck: %v", err)
		os.Exit(2)
	}
	defer tdev.Close()

	cfg := fidr.DefaultConfig(fidr.FIDRFull)
	cfg.DataSSD = dev
	cfg.TableSSD = tdev
	srv, err := core.RecoverServer(cfg)
	if err != nil {
		log.Printf("fidrfsck: recover: %v", err)
		os.Exit(2)
	}

	rep, err := srv.Verify()
	if err != nil {
		log.Printf("fidrfsck: verify: %v", err)
		os.Exit(2)
	}
	fmt.Printf("fidrfsck: %d mappings, %d chunks checked\n", rep.MappingsChecked, rep.ChunksChecked)
	if *gc {
		g := srv.Garbage()
		fmt.Printf("fidrfsck: %d reclaimable bytes across %d containers\n",
			g.TotalDeadBytes, len(g.DeadBytesByContainer))
	}
	if rep.OK() {
		fmt.Println("fidrfsck: volume is consistent")
		return
	}
	for _, p := range rep.Problems {
		fmt.Printf("fidrfsck: PROBLEM: %s\n", p)
	}
	os.Exit(1)
}
