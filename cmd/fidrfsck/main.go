// Command fidrfsck checks a durable FIDR volume offline: it recovers the
// server state from the checkpoint on the table volume (replaying the
// write-ahead log when one is given) and runs the full consistency pass
// (metadata invariants, reference counts, content re-hashing against the
// Hash-PBN table).
//
// Usage:
//
//	fidrfsck -data-file vol.data -table-file vol.table [-wal-file vol.wal]
//
// Exit status 0 means consistent; 1 means problems were found (each is
// printed); 2 means the volumes could not be opened or recovered —
// "no checkpoint" (not a FIDR volume, or never checkpointed) and
// "corrupt checkpoint" are reported distinctly.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"fidr"
	"fidr/internal/core"
	"fidr/internal/ssd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, recovers the volume
// and reports, returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fidrfsck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataFile := fs.String("data-file", "", "file-backed data volume (required)")
	tableFile := fs.String("table-file", "", "file-backed table volume (required)")
	walFile := fs.String("wal-file", "", "write-ahead log to replay over the checkpoint (optional)")
	gc := fs.Bool("gc", false, "also report reclaimable garbage per container")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dataFile == "" || *tableFile == "" {
		fs.Usage()
		return 2
	}

	dcfg := ssd.Samsung970Pro("data-ssd")
	dcfg.BackingFile = *dataFile
	dev, err := ssd.New(dcfg)
	if err != nil {
		fmt.Fprintf(stderr, "fidrfsck: %v\n", err)
		return 2
	}
	defer dev.Close()
	tcfg := ssd.Samsung970Pro("table-ssd")
	tcfg.BackingFile = *tableFile
	tcfg.CapacityBytes = 1 << 40
	tdev, err := ssd.New(tcfg)
	if err != nil {
		fmt.Fprintf(stderr, "fidrfsck: %v\n", err)
		return 2
	}
	defer tdev.Close()

	cfg := fidr.DefaultConfig(fidr.FIDRFull)
	cfg.DataSSD = dev
	cfg.TableSSD = tdev
	if *walFile != "" {
		w, err := core.OpenWALFile(*walFile)
		if err != nil {
			fmt.Fprintf(stderr, "fidrfsck: wal: %v\n", err)
			return 2
		}
		defer w.Close()
		cfg.WAL = w
	}
	srv, err := core.RecoverServer(cfg)
	switch {
	case errors.Is(err, core.ErrNoCheckpoint):
		fmt.Fprintf(stderr, "fidrfsck: no volume: %v\n", err)
		return 2
	case errors.Is(err, core.ErrCorruptCheckpoint):
		fmt.Fprintf(stderr, "fidrfsck: corrupt volume: %v\n", err)
		return 2
	case err != nil:
		fmt.Fprintf(stderr, "fidrfsck: recover: %v\n", err)
		return 2
	}
	if rr := srv.LastRecovery(); cfg.WAL != nil {
		fmt.Fprintf(stdout, "fidrfsck: replayed %d WAL records (checkpoint seq %d, genesis=%v)\n",
			rr.ReplayedRecords, rr.CheckpointSeq, rr.FromGenesis)
		if rr.StaleTableEntriesDropped > 0 || rr.OrphanedContainersCleared > 0 {
			fmt.Fprintf(stdout, "fidrfsck: repaired %d stale table entries, %d orphaned containers\n",
				rr.StaleTableEntriesDropped, rr.OrphanedContainersCleared)
		}
	}

	rep, err := srv.Verify()
	if err != nil {
		fmt.Fprintf(stderr, "fidrfsck: verify: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "fidrfsck: %d mappings, %d chunks checked\n", rep.MappingsChecked, rep.ChunksChecked)
	if *gc {
		g := srv.Garbage()
		fmt.Fprintf(stdout, "fidrfsck: %d reclaimable bytes across %d containers\n",
			g.TotalDeadBytes, len(g.DeadBytesByContainer))
	}
	if rep.OK() {
		fmt.Fprintln(stdout, "fidrfsck: volume is consistent")
		return 0
	}
	for _, p := range rep.Problems {
		fmt.Fprintf(stdout, "fidrfsck: PROBLEM: %s\n", p)
	}
	return 1
}
