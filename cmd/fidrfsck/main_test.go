package main

// Table-driven exit-code tests: each case builds a volume state in a
// temp dir, then drives run() directly (no exec) and checks the exit
// code and report text a deployment's scripts would key on.

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"fidr"
	"fidr/internal/core"
	"fidr/internal/hashpbn"
	"fidr/internal/ssd"
)

// openVolumes opens file-backed devices exactly the way run() does, so
// volumes built here are readable by the command under test.
func openVolumes(t *testing.T, dir string) (*ssd.SSD, *ssd.SSD) {
	t.Helper()
	dcfg := ssd.Samsung970Pro("data-ssd")
	dcfg.BackingFile = filepath.Join(dir, "vol.data")
	dev, err := ssd.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := ssd.Samsung970Pro("table-ssd")
	tcfg.BackingFile = filepath.Join(dir, "vol.table")
	tcfg.CapacityBytes = 1 << 40
	tdev, err := ssd.New(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev, tdev
}

// buildVolume writes n unique chunks (seeds base..base+n) through a
// server over the given devices and returns it without checkpointing.
func buildVolume(t *testing.T, dev, tdev *ssd.SSD, w *core.WAL, lbaBase, seedBase, n uint64) *fidr.Server {
	t.Helper()
	cfg := fidr.DefaultConfig(fidr.FIDRFull)
	cfg.DataSSD = dev
	cfg.TableSSD = tdev
	cfg.WAL = w
	srv, err := fidr.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	writeMore(t, srv, lbaBase, seedBase, n)
	return srv
}

func writeMore(t *testing.T, srv *fidr.Server, lbaBase, seedBase, n uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		if err := srv.Write(lbaBase+i, fidr.MakeChunk(seedBase+i, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
}

// ckpOffset is where the checkpoint region sits for the default config
// (run() always uses DefaultConfig geometry).
func ckpOffset(t *testing.T) uint64 {
	t.Helper()
	geom, err := hashpbn.GeometryFor(fidr.DefaultConfig(fidr.FIDRFull).UniqueChunkCapacity, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return geom.TableBytes()
}

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		setup    func(t *testing.T, dir string) []string // returns extra args
		wantExit int
		wantText string // substring of combined output
	}{
		{
			name: "consistent volume",
			setup: func(t *testing.T, dir string) []string {
				dev, tdev := openVolumes(t, dir)
				srv := buildVolume(t, dev, tdev, nil, 0, 0, 200)
				if err := srv.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				dev.Close()
				tdev.Close()
				return nil
			},
			wantExit: 0,
			wantText: "volume is consistent",
		},
		{
			name: "no volume",
			setup: func(t *testing.T, dir string) []string {
				dev, tdev := openVolumes(t, dir) // fresh, never written
				dev.Close()
				tdev.Close()
				return nil
			},
			wantExit: 2,
			wantText: "no volume",
		},
		{
			name: "corrupt checkpoint",
			setup: func(t *testing.T, dir string) []string {
				dev, tdev := openVolumes(t, dir)
				srv := buildVolume(t, dev, tdev, nil, 0, 0, 100)
				if err := srv.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				// Smash the snapshot body; the magic stays intact.
				if err := tdev.Write(ckpOffset(t)+24, bytes.Repeat([]byte{0xA5}, 512)); err != nil {
					t.Fatal(err)
				}
				dev.Close()
				tdev.Close()
				return nil
			},
			wantExit: 2,
			wantText: "corrupt volume",
		},
		{
			name: "corrupted data container",
			setup: func(t *testing.T, dir string) []string {
				dev, tdev := openVolumes(t, dir)
				srv := buildVolume(t, dev, tdev, nil, 0, 0, 300)
				if err := srv.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				// Flip a stored container's bytes: re-hashing must flag it.
				if err := dev.Write(4096, bytes.Repeat([]byte{0xFF}, 4096)); err != nil {
					t.Fatal(err)
				}
				dev.Close()
				tdev.Close()
				return nil
			},
			wantExit: 1,
			wantText: "PROBLEM",
		},
		{
			name: "orphaned container",
			setup: func(t *testing.T, dir string) []string {
				dev, tdev := openVolumes(t, dir)
				srv := buildVolume(t, dev, tdev, nil, 0, 0, 200)
				if err := srv.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				// Post-checkpoint writes reach the data SSD but never a
				// checkpoint: data beyond the recovered frontier.
				writeMore(t, srv, 5000, 50_000, 600)
				dev.Close()
				tdev.Close()
				return nil
			},
			wantExit: 1,
			wantText: "orphaned data",
		},
		{
			name: "stale table entries",
			setup: func(t *testing.T, dir string) []string {
				dev, tdev := openVolumes(t, dir)
				srv := buildVolume(t, dev, tdev, nil, 0, 0, 200)
				if err := srv.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				// Enough post-checkpoint uniques to evict dirty bucket
				// cache lines: the durable table then indexes chunks the
				// checkpoint never heard of.
				writeMore(t, srv, 10_000, 100_000, 6000)
				dev.Close()
				tdev.Close()
				return nil
			},
			wantExit: 1,
			wantText: "stale Hash-PBN entry",
		},
		{
			name: "wal replay restores consistency",
			setup: func(t *testing.T, dir string) []string {
				walPath := filepath.Join(dir, "vol.wal")
				w, err := core.OpenWALFile(walPath)
				if err != nil {
					t.Fatal(err)
				}
				dev, tdev := openVolumes(t, dir)
				srv := buildVolume(t, dev, tdev, w, 0, 0, 200)
				if err := srv.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				// The same post-checkpoint writes that are damage without
				// a WAL are recoverable with one.
				writeMore(t, srv, 5000, 50_000, 600)
				dev.Close()
				tdev.Close()
				w.Close()
				return []string{"-wal-file", walPath}
			},
			wantExit: 0,
			wantText: "volume is consistent",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			extra := tc.setup(t, dir)
			args := append([]string{
				"-data-file", filepath.Join(dir, "vol.data"),
				"-table-file", filepath.Join(dir, "vol.table"),
			}, extra...)
			var stdout, stderr strings.Builder
			code := run(args, &stdout, &stderr)
			out := stdout.String() + stderr.String()
			if code != tc.wantExit {
				t.Fatalf("exit %d, want %d; output:\n%s", code, tc.wantExit, out)
			}
			if !strings.Contains(out, tc.wantText) {
				t.Fatalf("output missing %q:\n%s", tc.wantText, out)
			}
		})
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("missing flags: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
