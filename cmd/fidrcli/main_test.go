package main

import "testing"

func TestParseStatsSingleServer(t *testing.T) {
	body := "counter core.writes 400\n" +
		"gauge core.batch_fill 0.5\n" +
		"hist stage.hash.ns count=65 mean=1000 min=10 p50=900 p90=2000 p99=3000 max=3100\n"
	lines, scopes := parseStats(body)
	if len(scopes) != 0 {
		t.Fatalf("scopes = %v, want none", scopes)
	}
	if len(lines) != 3 {
		t.Fatalf("parsed %d lines, want 3", len(lines))
	}
	if lines[0].name != "core.writes" || lines[0].value != "400" {
		t.Fatalf("counter parsed as %+v", lines[0])
	}
	if lines[2].kv["p99"] != "3000" {
		t.Fatalf("hist kv = %v", lines[2].kv)
	}
}

func TestParseStatsClusterScopes(t *testing.T) {
	body := "counter core.writes 400\n" +
		"counter group0.core.writes 90\n" +
		"counter group1.core.writes 110\n" +
		"counter group10.core.writes 200\n" +
		"gauge group0.derived.write_share 0.225\n" +
		"hist group1.stage.hash.ns count=5 mean=1 min=1 p50=1 p90=1 p99=1 max=1\n"
	lines, scopes := parseStats(body)
	want := []string{"group0", "group1", "group10"}
	if len(scopes) != len(want) {
		t.Fatalf("scopes = %v, want %v", scopes, want)
	}
	for i, s := range want {
		if scopes[i] != s {
			t.Fatalf("scopes = %v, want %v (numeric order)", scopes, want)
		}
	}
	for _, sl := range lines {
		if sl.scope != "" && groupRe.MatchString(sl.name) {
			t.Fatalf("group prefix not stripped: %+v", sl)
		}
	}
	// The merged (unscoped) line survives alongside the group lines.
	var merged, grouped int
	for _, sl := range lines {
		if sl.name == "core.writes" {
			if sl.scope == "" {
				merged++
			} else {
				grouped++
			}
		}
	}
	if merged != 1 || grouped != 3 {
		t.Fatalf("core.writes: %d merged, %d grouped", merged, grouped)
	}
}
