// Command fidrcli is a client for fidrd: it stores files into the
// chunk-addressed volume, reads them back, replays generated traces, or
// inspects a live server's metrics.
//
// Usage:
//
//	fidrcli put    -addr host:9400 -lba 0 -file data.bin
//	fidrcli get    -addr host:9400 -lba 0 -count 16 -out copy.bin
//	fidrcli replay -addr host:9400 -trace workload.trc -ratio 0.5
//	fidrcli stats  -metrics-addr host:9401
//	fidrcli traces -metrics-addr host:9401
//
// stats and traces talk to the server's -metrics-addr HTTP endpoint:
// stats fetches /metrics and pretty-prints counters, gauges and
// per-stage latency histograms; traces fetches and prints the most
// recent request traces.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"fidr"
	"fidr/internal/metrics"
	"fidr/internal/proto"
	"fidr/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9400", "server address")
	maddr := fs.String("metrics-addr", "127.0.0.1:9401", "server metrics HTTP address (stats, traces)")
	lba := fs.Uint64("lba", 0, "starting logical block address (4-KB units)")
	file := fs.String("file", "", "input file (put)")
	out := fs.String("out", "", "output file (get); default stdout")
	count := fs.Int("count", 1, "chunks to read (get)")
	traceFile := fs.String("trace", "", "trace file (replay)")
	ratio := fs.Float64("ratio", 0.5, "content compressibility for replayed writes")
	fs.Parse(os.Args[2:])

	var err error
	switch cmd {
	case "stats":
		err = stats(*maddr)
	case "traces":
		err = traces(*maddr)
	case "put", "get", "replay":
		var c *proto.Client
		c, err = proto.Dial(*addr)
		if err != nil {
			log.Fatalf("fidrcli: %v", err)
		}
		defer c.Close()
		switch cmd {
		case "put":
			err = put(c, *lba, *file)
		case "get":
			err = get(c, *lba, *count, *out)
		case "replay":
			err = replay(c, *traceFile, *ratio)
		}
	default:
		usage()
	}
	if err != nil {
		log.Fatalf("fidrcli: %s: %v", cmd, err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fidrcli put|get|replay|stats|traces [flags]  (see -h per command)")
	os.Exit(2)
}

// fetch GETs one path from the server's metrics endpoint.
func fetch(addr, path string) (string, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := http.Get(addr + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

// stats fetches /metrics and renders the dump as tables.
func stats(addr string) error {
	body, err := fetch(addr, "/metrics")
	if err != nil {
		return err
	}
	scalars := metrics.NewTable("counters and gauges", "name", "value")
	hists := metrics.NewTable("histograms", "name", "count", "mean", "p50", "p90", "p99", "max")
	var nScalar, nHist int
	for _, line := range strings.Split(body, "\n") {
		f := strings.Fields(line)
		if len(f) < 3 {
			continue
		}
		switch f[0] {
		case "counter", "gauge":
			scalars.Row(f[1], f[2])
			nScalar++
		case "hist":
			// Fields arrive as key=value pairs in dump order:
			// count= mean= min= p50= p90= p99= max=.
			kv := make(map[string]string, len(f)-2)
			for _, pair := range f[2:] {
				if k, v, ok := strings.Cut(pair, "="); ok {
					kv[k] = v
				}
			}
			hists.Row(f[1], kv["count"], kv["mean"], kv["p50"], kv["p90"], kv["p99"], kv["max"])
			nHist++
		}
	}
	if nScalar == 0 && nHist == 0 {
		return fmt.Errorf("no metrics in response")
	}
	fmt.Print(scalars.String())
	fmt.Println()
	fmt.Print(hists.String())
	return nil
}

// traces fetches /traces and prints the rendered table.
func traces(addr string) error {
	body, err := fetch(addr, "/traces")
	if err != nil {
		return err
	}
	fmt.Print(body)
	return nil
}

func put(c *proto.Client, lba uint64, path string) error {
	if path == "" {
		return fmt.Errorf("-file is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Stream the file in batched frames of up to 32 chunks.
	const batchChunks = 32
	buf := make([]byte, batchChunks*fidr.ChunkSize)
	chunks := 0
	for {
		n, err := io.ReadFull(f, buf)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			// Zero-pad the tail to a chunk boundary.
			padded := (n + fidr.ChunkSize - 1) / fidr.ChunkSize * fidr.ChunkSize
			for i := n; i < padded; i++ {
				buf[i] = 0
			}
			n = padded
			err = nil
		}
		if err != nil {
			return err
		}
		if werr := c.WriteBatch(lba+uint64(chunks), buf[:n]); werr != nil {
			return werr
		}
		chunks += n / fidr.ChunkSize
		if n < len(buf) {
			break
		}
	}
	fmt.Printf("stored %d chunks starting at LBA %d\n", chunks, lba)
	return nil
}

func get(c *proto.Client, lba uint64, count int, outPath string) error {
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	// Fetch in batched frames of up to 32 chunks.
	const batch = 32
	for i := 0; i < count; i += batch {
		n := batch
		if count-i < n {
			n = count - i
		}
		data, err := c.ReadBatch(lba+uint64(i), n)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return nil
}

func replay(c *proto.Client, path string, ratio float64) error {
	if path == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var writes, reads int
	for {
		req, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch req.Op {
		case trace.OpWrite:
			if err := c.WriteChunk(req.LBA, fidr.MakeChunk(req.ContentSeed, ratio)); err != nil {
				return err
			}
			writes++
		case trace.OpRead:
			if _, err := c.ReadChunk(req.LBA); err != nil {
				return fmt.Errorf("read LBA %d: %w", req.LBA, err)
			}
			reads++
		}
	}
	fmt.Printf("replayed %d writes, %d reads\n", writes, reads)
	return nil
}
