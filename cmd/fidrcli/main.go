// Command fidrcli is a client for fidrd: it stores files into the
// chunk-addressed volume, reads them back, replays generated traces, or
// inspects a live server's metrics.
//
// Usage:
//
//	fidrcli put    -addr host:9400 -lba 0 -file data.bin [-traced]
//	fidrcli get    -addr host:9400 -lba 0 -count 16 -out copy.bin
//	fidrcli replay -addr host:9400 -trace workload.trc -ratio 0.5
//	fidrcli stats  -metrics-addr host:9401
//	fidrcli traces -metrics-addr host:9401
//	fidrcli trace  -metrics-addr host:9401 <trace-id>
//	fidrcli slow   -metrics-addr host:9401
//	fidrcli slo    -metrics-addr host:9401
//	fidrcli top    -metrics-addr host:9401 [-interval 2s] [-n 0]
//	fidrcli capacity -metrics-addr host:9401 [-threshold 0.25]
//	fidrcli events -metrics-addr host:9401 [-follow] [-type gc_run]
//	fidrcli doctor -metrics-addr host:9401 [-fsync-p99 100ms]
//	fidrcli gc     -addr host:9400 [-threshold 0.25]
//	fidrcli checkpoint -addr host:9400
//
// stats, traces, trace, slow, slo and top talk to the server's
// -metrics-addr HTTP endpoint: stats fetches /metrics and pretty-prints
// counters, gauges and per-stage latency histograms; traces fetches and
// prints the most recent request traces; trace resolves one distributed
// trace ID (as printed by `put -traced` or scraped from a histogram
// exemplar) to its span tree (/traces/spans); slow prints the
// slow-request flight recorder (/traces/slow); slo renders the latency
// objectives' error budgets and burn rates (/slo); top polls
// /metrics/series and renders a live view of device utilization, queue
// depths, throughput and data reduction (-n bounds the number of
// frames, 0 = until interrupted).
//
// capacity renders the reduction-attribution ledger, garbage debt and
// GC recommendation (/capacity) plus the container heatmap
// (/capacity/containers); events tails the structured event journal
// (/events), with -follow polling for new records at -interval; gc and
// checkpoint speak the storage protocol (OpCompact/OpCheckpoint) to run
// a GC pass at -threshold dead fraction or persist a metadata
// checkpoint on a live server.
//
// doctor pulls the live health evidence — /metrics, /metrics/series,
// the event journal tail, and the flight-recorder bundle inventory —
// runs the local checks from internal/metrics/health over it and
// prints a pass/warn/fail report. It exits non-zero when any check
// FAILs, so it drops straight into scripts and CI gates; -fsync-p99
// sets the WAL fsync latency objective the checks compare against.
package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"

	"fidr"
	"fidr/internal/metrics"
	"fidr/internal/metrics/health"
	"fidr/internal/proto"
	"fidr/internal/trace"
	"fidr/internal/trace/span"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9400", "server address")
	maddr := fs.String("metrics-addr", "127.0.0.1:9401", "server metrics HTTP address (stats, traces)")
	lba := fs.Uint64("lba", 0, "starting logical block address (4-KB units)")
	file := fs.String("file", "", "input file (put)")
	out := fs.String("out", "", "output file (get); default stdout")
	count := fs.Int("count", 1, "chunks to read (get)")
	traceFile := fs.String("trace", "", "trace file (replay)")
	ratio := fs.Float64("ratio", 0.5, "content compressibility for replayed writes")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval (top)")
	frames := fs.Int("n", 0, "frames to render before exiting (top); 0 = until interrupted")
	traced := fs.Bool("traced", false, "trace each put batch end to end; prints one trace ID per batch")
	threshold := fs.Float64("threshold", 0.25, "GC dead-fraction threshold (capacity, gc)")
	follow := fs.Bool("follow", false, "keep polling for new events (events)")
	evType := fs.String("type", "", "filter events by type, e.g. gc_run (events)")
	fsyncP99 := fs.Duration("fsync-p99", 100*time.Millisecond, "WAL fsync p99 objective (doctor)")
	fs.Parse(os.Args[2:])

	var err error
	switch cmd {
	case "stats":
		err = stats(*maddr)
	case "traces":
		err = traces(*maddr)
	case "trace":
		if fs.NArg() != 1 {
			err = fmt.Errorf("usage: fidrcli trace [-metrics-addr host:9401] <trace-id>")
		} else {
			err = traceByID(*maddr, fs.Arg(0))
		}
	case "slow":
		err = slow(*maddr)
	case "slo":
		err = slo(*maddr)
	case "top":
		err = top(*maddr, *interval, *frames)
	case "capacity":
		err = capacity(*maddr, *threshold)
	case "events":
		err = eventsCmd(*maddr, *evType, *follow, *interval)
	case "doctor":
		err = doctor(*maddr, *fsyncP99)
	case "put", "get", "replay", "gc", "checkpoint":
		var c *proto.Client
		c, err = proto.Dial(*addr)
		if err != nil {
			log.Fatalf("fidrcli: %v", err)
		}
		defer c.Close()
		switch cmd {
		case "put":
			err = put(c, *lba, *file, *traced)
		case "get":
			err = get(c, *lba, *count, *out)
		case "replay":
			err = replay(c, *traceFile, *ratio)
		case "gc":
			err = gc(c, *threshold)
		case "checkpoint":
			err = checkpoint(c)
		}
	default:
		usage()
	}
	if err != nil {
		log.Fatalf("fidrcli: %s: %v", cmd, err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fidrcli put|get|replay|stats|traces|trace|slow|slo|top|capacity|events|doctor|gc|checkpoint [flags]  (see -h per command)")
	os.Exit(2)
}

// transientErr marks fetch failures worth retrying: an unreachable
// endpoint (daemon restarting, listen queue full) or a 5xx response.
// 4xx responses mean the request itself is wrong and fail immediately.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// fetch GETs one path from the server's metrics endpoint. Errors carry
// enough context to act on: an unreachable endpoint names the address
// and suggests the fidrd flag, a non-200 carries the status and body.
// Callers bubble the error to main, which exits non-zero.
func fetch(addr, path string) (string, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := http.Get(addr + path)
	if err != nil {
		return "", &transientErr{fmt.Errorf("metrics endpoint %s unreachable (is fidrd running with -metrics-addr?): %w", addr, err)}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", &transientErr{err}
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("GET %s%s: %s: %s", addr, path, resp.Status, strings.TrimSpace(string(body)))
		if resp.StatusCode >= 500 {
			return "", &transientErr{err}
		}
		return "", err
	}
	return string(body), nil
}

// fetchRetry wraps fetch with bounded exponential backoff (100ms
// doubling per attempt) for the long-running views: a daemon restart
// mid `top` or `events -follow` should ride through a few failed
// polls rather than kill a dashboard that has been up for hours. Only
// transient failures are retried; the final error names how many
// attempts were made.
func fetchRetry(addr, path string, attempts int) (string, error) {
	if attempts < 1 {
		attempts = 1
	}
	backoff := 100 * time.Millisecond
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var body string
		body, err = fetch(addr, path)
		if err == nil {
			return body, nil
		}
		var te *transientErr
		if !errors.As(err, &te) {
			return "", err
		}
	}
	return "", fmt.Errorf("giving up after %d attempts: %w", attempts, err)
}

// retryAttempts bounds fetchRetry for the polling commands: worst case
// ~3s of backoff before giving up with a clear error.
const retryAttempts = 5

// statLine is one parsed dump line.
type statLine struct {
	kind  string // "counter", "gauge" or "hist"
	scope string // "" for cluster-wide/merged, else "group<N>"
	name  string // metric name with any group prefix stripped
	kv    map[string]string
	value string
}

var groupRe = regexp.MustCompile(`^group(\d+)\.`)

// parseStats splits a /metrics dump into lines, stripping "group<N>."
// prefixes into a scope and returning the sorted scopes seen.
func parseStats(body string) (lines []statLine, scopes []string) {
	seen := map[string]bool{}
	for _, raw := range strings.Split(body, "\n") {
		f := strings.Fields(raw)
		if len(f) < 3 {
			continue
		}
		sl := statLine{kind: f[0], name: f[1]}
		switch sl.kind {
		case "counter", "gauge":
			sl.value = f[2]
		case "hist":
			// Fields arrive as key=value pairs in dump order:
			// count= mean= min= p50= p90= p99= max=.
			sl.kv = make(map[string]string, len(f)-2)
			for _, pair := range f[2:] {
				if k, v, ok := strings.Cut(pair, "="); ok {
					sl.kv[k] = v
				}
			}
		default:
			continue
		}
		if m := groupRe.FindStringSubmatch(sl.name); m != nil {
			sl.scope = "group" + m[1]
			sl.name = sl.name[len(m[0]):]
			if !seen[sl.scope] {
				seen[sl.scope] = true
				scopes = append(scopes, sl.scope)
			}
		}
		lines = append(lines, sl)
	}
	sort.Slice(scopes, func(i, j int) bool {
		// Numeric order: group2 before group10.
		return len(scopes[i]) < len(scopes[j]) ||
			(len(scopes[i]) == len(scopes[j]) && scopes[i] < scopes[j])
	})
	return lines, scopes
}

// stats fetches /metrics and renders the dump as tables. Against a
// cluster fidrd, scalar metrics become one column per group next to the
// merged cluster-wide value, and histograms carry a scope column.
func stats(addr string) error {
	body, err := fetch(addr, "/metrics")
	if err != nil {
		return err
	}
	lines, scopes := parseStats(body)
	if len(lines) == 0 {
		return fmt.Errorf("no metrics in response")
	}
	if len(scopes) == 0 {
		scalars := metrics.NewTable("counters and gauges", "name", "value")
		hists := metrics.NewTable("histograms", "name", "count", "mean", "p50", "p90", "p99", "max")
		for _, sl := range lines {
			if sl.kind == "hist" {
				hists.Row(sl.name, sl.kv["count"], sl.kv["mean"], sl.kv["p50"], sl.kv["p90"], sl.kv["p99"], sl.kv["max"])
			} else {
				scalars.Row(sl.name, sl.value)
			}
		}
		fmt.Print(scalars.String())
		fmt.Println()
		fmt.Print(hists.String())
		return nil
	}

	// Cluster view: pivot scalars into name x (merged, group0, ...).
	byName := map[string]map[string]string{}
	var order []string
	for _, sl := range lines {
		if sl.kind == "hist" {
			continue
		}
		if byName[sl.name] == nil {
			byName[sl.name] = map[string]string{}
			order = append(order, sl.name)
		}
		scope := sl.scope
		if scope == "" {
			scope = "merged"
		}
		byName[sl.name][scope] = sl.value
	}
	cols := append([]string{"name", "merged"}, scopes...)
	scalars := metrics.NewTable("counters and gauges", cols...)
	for _, name := range order {
		row := make([]any, 0, len(cols))
		row = append(row, name, byName[name]["merged"])
		for _, sc := range scopes {
			row = append(row, byName[name][sc])
		}
		scalars.Row(row...)
	}
	hists := metrics.NewTable("histograms", "scope", "name", "count", "mean", "p50", "p90", "p99", "max")
	for _, sl := range lines {
		if sl.kind != "hist" {
			continue
		}
		scope := sl.scope
		if scope == "" {
			scope = "merged"
		}
		hists.Row(scope, sl.name, sl.kv["count"], sl.kv["mean"], sl.kv["p50"], sl.kv["p90"], sl.kv["p99"], sl.kv["max"])
	}
	fmt.Print(scalars.String())
	fmt.Println()
	fmt.Print(hists.String())
	return nil
}

// traces fetches /traces and prints the rendered table.
func traces(addr string) error {
	body, err := fetch(addr, "/traces")
	if err != nil {
		return err
	}
	fmt.Print(body)
	return nil
}

// slow fetches the slow-request flight recorder and prints it.
func slow(addr string) error {
	body, err := fetch(addr, "/traces/slow")
	if err != nil {
		return err
	}
	fmt.Print(body)
	return nil
}

// traceByID resolves one distributed trace ID to its rendered span
// tree. IDs come from `put -traced`, from histogram exemplars on
// /metrics?format=prom, or from another trace's output.
func traceByID(addr, id string) error {
	if _, err := span.ParseTraceID(id); err != nil {
		return fmt.Errorf("bad trace ID %q: %v", id, err)
	}
	body, err := fetch(addr, "/traces/spans?id="+id)
	if err != nil {
		return err
	}
	fmt.Print(body)
	return nil
}

// slo fetches the error-budget dump and renders the objective table.
func slo(addr string) error {
	body, err := fetch(addr, "/slo")
	if err != nil {
		return err
	}
	var d metrics.SLODump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		return fmt.Errorf("parse /slo: %w", err)
	}
	fmt.Print(metrics.RenderSLO(d))
	return nil
}

// capacity fetches the reduction-attribution ledger and the container
// heatmap and renders the dashboard: where every client byte went
// (dedup, compression, stored), the garbage debt against it, the
// fingerprint-table occupancy, and whether a GC pass at -threshold
// would pay off.
func capacity(addr string, threshold float64) error {
	body, err := fetch(addr, fmt.Sprintf("/capacity?threshold=%g", threshold))
	if err != nil {
		return err
	}
	var r fidr.CapacityReport
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		return fmt.Errorf("parse /capacity: %w", err)
	}
	pct := func(part, whole uint64) string {
		if whole == 0 {
			return "-"
		}
		return fmt.Sprintf("%5.1f%%", float64(part)/float64(whole)*100)
	}

	attr := metrics.NewTable("reduction attribution", "bucket", "bytes", "of logical")
	attr.Row("logical writes", metrics.Bytes(r.LogicalWriteBytes), pct(r.LogicalWriteBytes, r.LogicalWriteBytes))
	attr.Row("dedup saved", metrics.Bytes(r.DedupSavedBytes), pct(r.DedupSavedBytes, r.LogicalWriteBytes))
	attr.Row("compression saved", metrics.Bytes(r.CompressionSavedBytes), pct(r.CompressionSavedBytes, r.LogicalWriteBytes))
	attr.Row("stored", metrics.Bytes(r.StoredBytes), pct(r.StoredBytes, r.LogicalWriteBytes))
	if r.UnattributedBytes > 0 {
		attr.Row("in flight", metrics.Bytes(r.UnattributedBytes), pct(r.UnattributedBytes, r.LogicalWriteBytes))
	}
	attr.Row("reduction ratio", fmt.Sprintf("%.2fx", r.ReductionRatio), "")
	fmt.Print(attr.String())
	fmt.Println()

	cap := metrics.NewTable("capacity and garbage", "metric", "value")
	cap.Row("live bytes", metrics.Bytes(r.LiveBytes))
	cap.Row("garbage bytes", metrics.Bytes(r.GarbageBytes)+"  ("+pct(r.GarbageBytes, r.StoredBytes)+" of stored)")
	cap.Row("reclaimed by GC", metrics.Bytes(r.ReclaimedDeadBytes))
	cap.Row("open container", metrics.Bytes(r.OpenContainerBytes))
	cap.Row("containers", fmt.Sprintf("%d (%d retired)", r.Containers, r.RetiredContainers))
	cap.Row("fingerprints live", fmt.Sprintf("%d / %d (%.1f%%)", r.FPLive, r.FPCapacity, r.FPOccupancy*100))
	cap.Row("fingerprints deleted", fmt.Sprintf("%d", r.DeletedFingerprints))
	fmt.Print(cap.String())
	fmt.Println()

	gc := metrics.NewTable("gc advice", "metric", "value")
	gc.Row("dead-fraction threshold", fmt.Sprintf("%.2f", r.GC.Threshold))
	gc.Row("candidate containers", fmt.Sprintf("%d", r.GC.CandidateContainers))
	gc.Row("projected reclaim", metrics.Bytes(r.GC.ProjectedReclaimBytes))
	if r.GC.Recommended {
		gc.Row("recommendation", "RUN GC (fidrcli gc -threshold "+fmt.Sprintf("%g", r.GC.Threshold)+")")
	} else {
		gc.Row("recommendation", "no compaction needed")
	}
	fmt.Print(gc.String())
	fmt.Println()

	hbody, err := fetch(addr, "/capacity/containers")
	if err != nil {
		return err
	}
	var hm fidr.ContainerHeatmap
	if err := json.Unmarshal([]byte(hbody), &hm); err != nil {
		return fmt.Errorf("parse /capacity/containers: %w", err)
	}
	heat := metrics.NewTable(
		fmt.Sprintf("container heatmap — %d containers, %d retired", hm.Containers, hm.Retired),
		"age band", "dead frac", "containers", "live", "dead")
	ageName := [...]string{"old", "mid", "young"}
	for _, b := range hm.Buckets {
		name := fmt.Sprintf("band %d", b.AgeBand)
		if b.AgeBand >= 0 && b.AgeBand < len(ageName) {
			name = ageName[b.AgeBand]
		}
		heat.Row(name,
			fmt.Sprintf("%.1f–%.1f", b.DeadFracLo, b.DeadFracHi),
			fmt.Sprintf("%d", b.Containers),
			metrics.Bytes(b.LiveBytes),
			metrics.Bytes(b.DeadBytes))
	}
	fmt.Print(heat.String())
	return nil
}

// eventsCmd tails the structured event journal. One shot prints every
// retained (optionally type-filtered) event; -follow then keeps polling
// /events?since=<last seq> at the -interval cadence until interrupted.
func eventsCmd(addr, typ string, follow bool, interval time.Duration) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	// One-shot mode fails fast; -follow rides through transient fetch
	// errors with bounded backoff so a daemon restart doesn't kill the
	// tail.
	attempts := 1
	if follow {
		attempts = retryAttempts
	}
	var since uint64
	for {
		path := fmt.Sprintf("/events?since=%d", since)
		if typ != "" {
			path += "&type=" + typ
		}
		body, err := fetchRetry(addr, path, attempts)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(body, "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			var ev fidr.Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return fmt.Errorf("parse /events line: %w", err)
			}
			fmt.Println(renderEvent(ev))
			if ev.Seq > since {
				since = ev.Seq
			}
		}
		if !follow {
			return nil
		}
		time.Sleep(interval)
	}
}

// renderEvent formats one journal record as a single line:
// sequence, wall time, type, origin group, trace link, and the sorted
// type-specific fields.
func renderEvent(ev fidr.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d  %s  %-16s g%d",
		ev.Seq, time.Unix(0, ev.TimeUnixNano).Format("15:04:05.000"), ev.Type, ev.Group)
	if ev.Detail != "" {
		fmt.Fprintf(&b, "  %s", ev.Detail)
	}
	keys := make([]string, 0, len(ev.Fields))
	for k := range ev.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s=%d", k, ev.Fields[k])
	}
	if ev.Trace != "" {
		fmt.Fprintf(&b, "  trace=%s", ev.Trace)
	}
	return b.String()
}

// doctor gathers the live health evidence and renders the check
// report. /metrics is mandatory — without it there is nothing to
// diagnose — while the series window, event journal and flight-recorder
// bundle degrade to SKIP/WARN verdicts when unavailable, so the doctor
// still works against a daemon that predates those endpoints. Any FAIL
// verdict surfaces as a non-nil error, which main turns into a non-zero
// exit for scripts and CI gates.
func doctor(addr string, fsyncP99 time.Duration) error {
	in := health.DoctorInput{FsyncP99Max: fsyncP99}

	body, err := fetch(addr, "/metrics")
	if err != nil {
		return err
	}
	in.Metrics = metrics.ParseMetricsText(body)

	if body, err := fetch(addr, "/metrics/series"); err == nil {
		if jerr := json.Unmarshal([]byte(body), &in.Series); jerr != nil {
			fmt.Fprintf(os.Stderr, "doctor: parse /metrics/series: %v\n", jerr)
		}
	} else {
		fmt.Fprintf(os.Stderr, "doctor: %v\n", err)
	}

	if body, err := fetch(addr, "/events"); err == nil {
		for _, line := range strings.Split(body, "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			var ev fidr.Event
			if jerr := json.Unmarshal([]byte(line), &ev); jerr == nil {
				in.Events = append(in.Events, ev)
			}
		}
	} else {
		fmt.Fprintf(os.Stderr, "doctor: %v\n", err)
	}

	if body, err := fetch(addr, "/debug/bundle"); err == nil {
		in.Snapshots, in.BundleErr = bundleSnapshots([]byte(body))
	} else if strings.Contains(err.Error(), "flight recorder disabled") {
		in.BundleErr = "disabled"
	} else {
		in.BundleErr = err.Error()
	}

	fails, _ := health.RenderDoctor(os.Stdout, health.Diagnose(in))
	if fails > 0 {
		return fmt.Errorf("%d check(s) failed", fails)
	}
	return nil
}

// bundleSnapshots lists the snapshot directories inside a
// flight-recorder bundle (a tar.gz whose entries are
// <snapshot>/<artifact> paths) without unpacking it to disk.
func bundleSnapshots(bundle []byte) (names []string, errText string) {
	gz, err := gzip.NewReader(bytes.NewReader(bundle))
	if err != nil {
		return nil, "bad bundle gzip: " + err.Error()
	}
	defer gz.Close()
	seen := map[string]bool{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return names, "bad bundle tar: " + err.Error()
		}
		dir, _, ok := strings.Cut(strings.TrimPrefix(hdr.Name, "./"), "/")
		if ok && dir != "" && !seen[dir] {
			seen[dir] = true
			names = append(names, dir)
		}
	}
	sort.Strings(names)
	return names, ""
}

// gc asks the server to run a compaction pass over every group at the
// given dead-fraction threshold and prints what it reclaimed.
func gc(c *proto.Client, threshold float64) error {
	sum, err := c.Compact(threshold)
	if err != nil {
		return err
	}
	fmt.Printf("compacted %d containers: moved %d chunks (%s), dropped %d dead chunks, reclaimed %s\n",
		sum.ContainersCompacted, sum.ChunksMoved, metrics.Bytes(sum.BytesMoved),
		sum.ChunksDropped, metrics.Bytes(sum.BytesReclaimed))
	return nil
}

// checkpoint asks the server to persist a metadata checkpoint (and
// truncate the WAL where one is attached).
func checkpoint(c *proto.Client) error {
	if err := c.Checkpoint(); err != nil {
		return err
	}
	fmt.Println("checkpoint persisted")
	return nil
}

// top polls /metrics/series and renders a live device view. frames
// bounds the number of refreshes (0 = until interrupted); a single
// frame prints without clearing the terminal, so `fidrcli top -n 1`
// composes with pipes and scripts.
func top(addr string, interval time.Duration, frames int) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	for i := 0; ; i++ {
		body, err := fetchRetry(addr, "/metrics/series", retryAttempts)
		if err != nil {
			return err
		}
		var d metrics.SeriesDump
		if err := json.Unmarshal([]byte(body), &d); err != nil {
			return fmt.Errorf("parse /metrics/series: %w", err)
		}
		if frames != 1 {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Print(renderTop(d))
		if frames > 0 && i+1 >= frames {
			return nil
		}
		time.Sleep(interval)
	}
}

// topSeries indexes a dump by name for the summary lines.
func topSeries(d metrics.SeriesDump) map[string]metrics.Series {
	byName := make(map[string]metrics.Series, len(d.Series))
	for _, se := range d.Series {
		byName[se.Name] = se
	}
	return byName
}

// dutyBar renders a 20-cell utilization bar.
func dutyBar(duty float64) string {
	const cells = 20
	n := int(duty*cells + 0.5)
	if n > cells {
		n = cells
	}
	return strings.Repeat("#", n) + strings.Repeat(".", cells-n)
}

// renderTop formats one frame of the live view: per-device duty cycles,
// queue/buffer occupancy, and throughput/reduction headlines. Cluster
// per-group series ("group<N>." prefix) are skipped — top shows the
// merged view; use `fidrcli stats` for the per-group pivot.
func renderTop(d metrics.SeriesDump) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fidr top — %d samples over %.0fs\n\n", d.Samples, d.WindowSeconds)

	util := metrics.NewTable("device utilization (windowed duty cycle)",
		"device", "busy", "utilization")
	queues := metrics.NewTable("queues and buffers", "gauge", "now", "min", "max")
	for _, se := range d.Series {
		if strings.HasPrefix(se.Name, "group") {
			continue
		}
		if se.Duty != nil {
			device := strings.TrimSuffix(se.Name, ".busy_ns")
			util.Row(device, fmt.Sprintf("%5.1f%%", *se.Duty*100), dutyBar(*se.Duty))
		}
		if se.Kind == "gauge" && (strings.Contains(se.Name, "queue") || strings.Contains(se.Name, "buffered")) {
			queues.Row(se.Name, se.Last, se.Min, se.Max)
		}
	}
	b.WriteString(util.String())
	b.WriteByte('\n')
	b.WriteString(queues.String())
	b.WriteByte('\n')

	s := topSeries(d)
	rate := func(name string) float64 { return s[name].RatePerSec }
	last := func(name string) float64 { return s[name].Last }
	sum := metrics.NewTable("throughput and reduction", "metric", "value")
	sum.Row("client throughput", metrics.Bytes(uint64(rate("core.client_bytes")))+"/s")
	sum.Row("writes/s", fmt.Sprintf("%.1f", rate("core.writes")))
	sum.Row("reads/s", fmt.Sprintf("%.1f", rate("core.reads")))
	if client := last("core.client_bytes"); client > 0 {
		sum.Row("stored/client ratio", fmt.Sprintf("%.3f", last("core.stored_bytes")/client))
	}
	sum.Row("host DRAM traffic", metrics.Bytes(uint64(rate("hostmodel.dram_bytes")))+"/s")
	sum.Row("host DRAM payload total", metrics.Bytes(uint64(last("hostmodel.dram_payload_bytes"))))
	sum.Row("PCIe p2p", metrics.Bytes(uint64(rate("pcie.p2p_bytes")))+"/s")
	sum.Row("PCIe via root complex", metrics.Bytes(uint64(rate("pcie.root_bytes")))+"/s")
	sum.Row("slow traces captured", fmt.Sprintf("%.0f", last("core.slow_traces")))
	b.WriteString(sum.String())
	return b.String()
}

func put(c *proto.Client, lba uint64, path string, traced bool) error {
	if path == "" {
		return fmt.Errorf("-file is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Stream the file in batched frames of up to 32 chunks.
	const batchChunks = 32
	buf := make([]byte, batchChunks*fidr.ChunkSize)
	chunks := 0
	for {
		n, err := io.ReadFull(f, buf)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			// Zero-pad the tail to a chunk boundary.
			padded := (n + fidr.ChunkSize - 1) / fidr.ChunkSize * fidr.ChunkSize
			for i := n; i < padded; i++ {
				buf[i] = 0
			}
			n = padded
			err = nil
		}
		if err != nil {
			return err
		}
		batchLBA := lba + uint64(chunks)
		if traced {
			id, werr := c.WriteBatchTraced(batchLBA, buf[:n])
			if werr != nil {
				return werr
			}
			fmt.Printf("trace %s  batch at LBA %d (%d chunks)\n", id, batchLBA, n/fidr.ChunkSize)
		} else if werr := c.WriteBatch(batchLBA, buf[:n]); werr != nil {
			return werr
		}
		chunks += n / fidr.ChunkSize
		if n < len(buf) {
			break
		}
	}
	fmt.Printf("stored %d chunks starting at LBA %d\n", chunks, lba)
	return nil
}

func get(c *proto.Client, lba uint64, count int, outPath string) error {
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	// Fetch in batched frames of up to 32 chunks.
	const batch = 32
	for i := 0; i < count; i += batch {
		n := batch
		if count-i < n {
			n = count - i
		}
		data, err := c.ReadBatch(lba+uint64(i), n)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return nil
}

func replay(c *proto.Client, path string, ratio float64) error {
	if path == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var writes, reads int
	for {
		req, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch req.Op {
		case trace.OpWrite:
			if err := c.WriteChunk(req.LBA, fidr.MakeChunk(req.ContentSeed, ratio)); err != nil {
				return err
			}
			writes++
		case trace.OpRead:
			if _, err := c.ReadChunk(req.LBA); err != nil {
				return fmt.Errorf("read LBA %d: %w", req.LBA, err)
			}
			reads++
		}
	}
	fmt.Printf("replayed %d writes, %d reads\n", writes, reads)
	return nil
}
