package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fidr/internal/metrics"
)

func TestFetchNon200IsError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	_, err := fetch(srv.URL, "/metrics")
	if err == nil {
		t.Fatal("non-200 response returned no error")
	}
	for _, want := range []string{"503", "not ready"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestFetchUnreachableIsClearError(t *testing.T) {
	// Reserve a port, then close it so the address is known-dead.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead := strings.TrimPrefix(srv.URL, "http://")
	srv.Close()

	_, err := fetch(dead, "/metrics")
	if err == nil {
		t.Fatal("unreachable endpoint returned no error")
	}
	for _, want := range []string{dead, "-metrics-addr"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestFetchOK(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("counter core.writes 1\n"))
	}))
	defer srv.Close()
	body, err := fetch(strings.TrimPrefix(srv.URL, "http://"), "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "core.writes") {
		t.Fatalf("body = %q", body)
	}
}

func TestRenderTop(t *testing.T) {
	duty := 0.42
	d := metrics.SeriesDump{
		Samples:       5,
		WindowSeconds: 4,
		Series: []metrics.Series{
			{Name: "ssd.data-ssd.busy_ns", Kind: "counter", RatePerSec: 4.2e8, Duty: &duty, Last: 1e9},
			{Name: "ssd.data-ssd.queue_depth", Kind: "gauge", Last: 3, Min: 0, Max: 7},
			{Name: "group0.ssd.data-ssd.queue_depth", Kind: "gauge", Last: 9},
			{Name: "core.client_bytes", Kind: "counter", RatePerSec: 1 << 20, Last: 1 << 22},
			{Name: "core.stored_bytes", Kind: "counter", Last: 1 << 21},
			{Name: "hostmodel.dram_payload_bytes", Kind: "counter", Last: 0},
			{Name: "pcie.p2p_bytes", Kind: "counter", RatePerSec: 2 << 20},
		},
	}
	out := renderTop(d)
	for _, want := range []string{
		"ssd.data-ssd", "42.0%", "queue_depth",
		"client throughput", "stored/client ratio", "0.500",
		"PCIe p2p",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("top frame missing %q:\n%s", want, out)
		}
	}
	// Per-group series stay out of the merged live view.
	if strings.Contains(out, "group0") {
		t.Fatalf("top frame leaked per-group series:\n%s", out)
	}
}

func TestDutyBar(t *testing.T) {
	if got := dutyBar(0); strings.Contains(got, "#") {
		t.Fatalf("idle bar = %q", got)
	}
	if got := dutyBar(1); strings.Contains(got, ".") {
		t.Fatalf("saturated bar = %q", got)
	}
	if got := dutyBar(0.5); strings.Count(got, "#") != 10 || len(got) != 20 {
		t.Fatalf("half bar = %q", got)
	}
}
