// Command fidrbench regenerates the paper's tables and figures, and
// emits machine-readable benchmark artifacts.
//
// Usage:
//
//	fidrbench [-ios N] all            # every artifact, paper order
//	fidrbench [-ios N] fig11 table5   # selected artifacts
//	fidrbench list                    # artifact names
//	fidrbench [-ios N] [-out dir] bench [experiment...]
//
// Output is plain-text tables with the paper's reported values quoted in
// footnotes, suitable for diffing against EXPERIMENTS.md.
//
// The bench verb drives instrumented runs and writes one
// BENCH_<experiment>.json per experiment to -out (default
// bench-artifacts/): throughput, dedup/reduction ratios, and
// p50/p90/p99 per-stage latencies distilled from the live metrics
// registry. With no experiment names it runs them all. The JSON schema
// is documented in README.md.
//
// -chunker selects the write chunking mode for bench runs: "fixed"
// (default) or "cdc" (content-defined, variable-size chunks cut by the
// skip-ahead gear chunker; -cdc-min/-cdc-avg/-cdc-max size the chunks).
// CDC runs the same workloads end to end — variable chunks through NIC
// buffering, dedup, compression and container packing — but is rejected
// for WAL-dependent experiments (archival, capacity).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fidr"
	"fidr/internal/chunk"
)

func main() {
	ios := flag.Int("ios", 0, "workload size in IOs per run (0 = default)")
	out := flag.String("out", "bench-artifacts", "output directory for bench artifacts")
	chunker := flag.String("chunker", "fixed", "bench chunking mode: fixed or cdc")
	cdcMin := flag.Int("cdc-min", 0, "CDC minimum chunk bytes; 0 = default")
	cdcAvg := flag.Int("cdc-avg", 0, "CDC average (target) chunk bytes; 0 = default")
	cdcMax := flag.Int("cdc-max", 0, "CDC maximum chunk bytes; 0 = default")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fidrbench [-ios N] all | list | <experiment>... | [-out dir] bench [name...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", fidr.Experiments())
		fmt.Fprintf(os.Stderr, "bench experiments: %v\n", fidr.BenchExperiments())
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, name := range fidr.Experiments() {
			fmt.Println(name)
		}
		return
	}
	mode, err := chunk.ParseMode(*chunker)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fidrbench: -chunker: %v\n", err)
		os.Exit(2)
	}
	chunking := chunk.Config{Mode: mode, Min: *cdcMin, Avg: *cdcAvg, Max: *cdcMax}
	if args[0] == "bench" {
		if err := runBench(args[1:], *ios, *out, chunking); err != nil {
			fmt.Fprintf(os.Stderr, "fidrbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	names := args
	if args[0] == "all" {
		names = fidr.Experiments()
	}
	failed := false
	for _, name := range names {
		start := time.Now()
		out, err := fidr.RunExperiment(name, *ios)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fidrbench: %s: %v\n", name, err)
			failed = true
			continue
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}

// runBench executes the named bench experiments (all when empty) and
// writes one BENCH_<name>.json artifact each.
func runBench(names []string, ios int, outDir string, chunking chunk.Config) error {
	if len(names) == 0 {
		names = fidr.BenchExperiments()
	}
	for _, name := range names {
		start := time.Now()
		art, err := fidr.RunBenchExperimentChunker(name, ios, chunking)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		path, err := fidr.WriteBenchArtifact(outDir, art)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%s: %.1f MB/s, dedup %.3f, reduction %.3f -> %s (%v)\n",
			name, art.ThroughputMBps, art.DedupRatio, art.ReductionRatio,
			path, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
