// Command fidrbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fidrbench [-ios N] all            # every artifact, paper order
//	fidrbench [-ios N] fig11 table5   # selected artifacts
//	fidrbench list                    # artifact names
//
// Output is plain-text tables with the paper's reported values quoted in
// footnotes, suitable for diffing against EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fidr"
)

func main() {
	ios := flag.Int("ios", 0, "workload size in IOs per run (0 = default)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fidrbench [-ios N] all | list | <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", fidr.Experiments())
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, name := range fidr.Experiments() {
			fmt.Println(name)
		}
		return
	}
	names := args
	if args[0] == "all" {
		names = fidr.Experiments()
	}
	failed := false
	for _, name := range names {
		start := time.Now()
		out, err := fidr.RunExperiment(name, *ios)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fidrbench: %s: %v\n", name, err)
			failed = true
			continue
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
