package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"fidr"
)

// End-to-end exercise of the capacity plane: a cluster daemon takes
// mixed dup/unique writes and a GC pass through the real CLI, and the
// attribution equation must balance on a live scrape; a durable daemon's
// checkpoint, WAL truncation and recovery must land in /events. CI's
// check-capacity step runs this test.

// startDaemonWith launches fidrd with extra flags and waits for /readyz.
func startDaemonWith(t *testing.T, bin string, extra ...string) (addr, maddr string, cmd *exec.Cmd) {
	t.Helper()
	addr, maddr = freePort(t), freePort(t)
	args := append([]string{"-addr", addr, "-metrics-addr", maddr, "-series-interval", "50ms"}, extra...)
	cmd = exec.Command(bin, args...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + maddr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return addr, maddr, cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("fidrd %v did not become ready", extra)
	return "", "", nil
}

// chunkFile writes n chunks to a file, seeded so seedAt(i) repeats make
// duplicate content.
func chunkFile(t *testing.T, path string, n int, seedAt func(i int) uint64) {
	t.Helper()
	buf := make([]byte, 0, n*fidr.ChunkSize)
	for i := 0; i < n; i++ {
		buf = append(buf, fidr.MakeChunk(seedAt(i), 0.5)...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// capacityScrape fetches and decodes /capacity.
func capacityScrape(t *testing.T, maddr, query string) fidr.CapacityReport {
	t.Helper()
	code, body := get(t, maddr, "/capacity"+query)
	if code != http.StatusOK {
		t.Fatalf("/capacity%s: status %d: %s", query, code, body)
	}
	var r fidr.CapacityReport
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatalf("/capacity: %v", err)
	}
	return r
}

// eventsScrape fetches and decodes the /events JSONL.
func eventsScrape(t *testing.T, maddr, query string) []fidr.Event {
	t.Helper()
	code, body := get(t, maddr, "/events"+query)
	if code != http.StatusOK {
		t.Fatalf("/events%s: status %d", query, code)
	}
	var out []fidr.Event
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ev fidr.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("/events line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	return out
}

func countByType(evs []fidr.Event, typ string) int {
	n := 0
	for _, ev := range evs {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

func TestCapacityE2E(t *testing.T) {
	dir := t.TempDir()
	fidrdBin, fidrcliBin := buildBinaries(t, dir)

	cli := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(fidrcliBin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("fidrcli %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Phase 1: a two-group cluster under mixed dup/unique CLI writes.
	// Small containers and batches so the modest workload seals several
	// containers per group and overwrites create real GC candidates.
	addr, maddr, _ := startDaemonWith(t, fidrdBin, "-groups", "2",
		"-container-size", "65536", "-batch", "16")
	const n = 192
	fill := filepath.Join(dir, "fill.bin")
	chunkFile(t, fill, n, func(i int) uint64 { return uint64(i % (n / 2)) }) // half duplicates
	cli("put", "-addr", addr, "-lba", "0", "-file", fill)
	over := filepath.Join(dir, "overwrite.bin")
	chunkFile(t, over, 3*n/4, func(i int) uint64 { return uint64(900000 + i) }) // all unique
	cli("put", "-addr", addr, "-lba", "0", "-file", over)

	// Attribution balances on the live scrape: every logical byte is in
	// exactly one bucket, with the in-flight slack called out explicitly
	// and bounded by the groups' unprocessed batch buffers.
	r := capacityScrape(t, maddr, "")
	wantLogical := uint64(n+3*n/4) * uint64(fidr.ChunkSize)
	if r.LogicalWriteBytes != wantLogical {
		t.Errorf("logical bytes %d, want %d", r.LogicalWriteBytes, wantLogical)
	}
	if got := r.DedupSavedBytes + r.CompressionSavedBytes + r.StoredBytes + r.UnattributedBytes; got != r.LogicalWriteBytes {
		t.Errorf("attribution unbalanced on live scrape: %d != %d", got, r.LogicalWriteBytes)
	}
	if slackBound := uint64(2 * 16 * fidr.ChunkSize); r.UnattributedBytes > slackBound {
		t.Errorf("in-flight slack %d exceeds two groups' batch buffers (%d)", r.UnattributedBytes, slackBound)
	}
	if r.DedupSavedBytes == 0 || r.CompressionSavedBytes == 0 {
		t.Errorf("expected both dedup and compression savings: %+v", r)
	}
	if r.ReductionRatio <= 1 {
		t.Errorf("reduction ratio %v on a reducible stream", r.ReductionRatio)
	}
	if r.GarbageBytes == 0 || !r.GC.Recommended {
		t.Errorf("overwrites produced no GC pressure: garbage=%d gc=%+v", r.GarbageBytes, r.GC)
	}

	// The heatmap is the same ledger re-bucketed: dead bytes reconcile.
	code, hmBody := get(t, maddr, "/capacity/containers")
	if code != http.StatusOK {
		t.Fatalf("/capacity/containers: status %d", code)
	}
	var hm fidr.ContainerHeatmap
	if err := json.Unmarshal([]byte(hmBody), &hm); err != nil {
		t.Fatalf("/capacity/containers: %v", err)
	}
	if hm.DeadBytes != r.GarbageBytes {
		t.Errorf("heatmap dead %d != ledger garbage %d", hm.DeadBytes, r.GarbageBytes)
	}
	var bucketDead uint64
	for _, b := range hm.Buckets {
		bucketDead += b.DeadBytes
	}
	if bucketDead != hm.DeadBytes {
		t.Errorf("heatmap buckets sum %d != header %d", bucketDead, hm.DeadBytes)
	}

	// Threshold validation on the endpoint.
	if code, _ := get(t, maddr, "/capacity?threshold=1.5"); code != http.StatusBadRequest {
		t.Errorf("/capacity?threshold=1.5: status %d, want 400", code)
	}

	// GC through the real CLI, then re-scrape: the garbage the advice
	// projected is gone and both groups journaled their pass.
	before := r
	gcOut := cli("gc", "-addr", addr, "-threshold", "0.25")
	if !strings.Contains(gcOut, "compacted") || !strings.Contains(gcOut, "reclaimed") {
		t.Errorf("fidrcli gc output: %q", gcOut)
	}
	r = capacityScrape(t, maddr, "")
	if r.GarbageBytes >= before.GarbageBytes {
		t.Errorf("garbage did not shrink after CLI GC: %d -> %d", before.GarbageBytes, r.GarbageBytes)
	}
	if r.ReclaimedDeadBytes == 0 || r.RetiredContainers == 0 {
		t.Errorf("GC left no trace in the ledger: %+v", r)
	}
	evs := eventsScrape(t, maddr, "")
	if got := countByType(evs, "gc_run"); got != 2 {
		t.Errorf("journal has %d gc_run events, want one per group", got)
	}
	groupsSeen := map[int]bool{}
	var lastSeq uint64
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Errorf("event sequence not monotonic: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Type == "gc_run" {
			groupsSeen[ev.Group] = true
		}
	}
	if len(groupsSeen) != 2 {
		t.Errorf("gc_run events cover groups %v, want both", groupsSeen)
	}
	if got := eventsScrape(t, maddr, "?type=gc_run"); len(got) != 2 {
		t.Errorf("/events?type=gc_run returned %d events", len(got))
	}

	// The dashboards render against the live daemon.
	capOut := cli("capacity", "-metrics-addr", maddr)
	for _, want := range []string{"reduction attribution", "gc advice", "container heatmap", "dedup saved"} {
		if !strings.Contains(capOut, want) {
			t.Errorf("fidrcli capacity output missing %q:\n%s", want, capOut)
		}
	}
	evOut := cli("events", "-metrics-addr", maddr, "-type", "gc_run")
	if !strings.Contains(evOut, "gc_run") || !strings.Contains(evOut, "bytes_reclaimed=") {
		t.Errorf("fidrcli events output: %q", evOut)
	}

	// Phase 2: a durable daemon's checkpoint, truncation and recovery
	// land in the journal.
	dataFile := filepath.Join(dir, "data.img")
	tableFile := filepath.Join(dir, "table.img")
	walFile := filepath.Join(dir, "wal.log")
	dAddr, dMaddr, dCmd := startDaemonWith(t, fidrdBin,
		"-data-file", dataFile, "-table-file", tableFile, "-wal-file", walFile)
	drive(t, dAddr, 96)
	cli("checkpoint", "-addr", dAddr)
	evs = eventsScrape(t, dMaddr, "")
	if countByType(evs, "checkpoint") == 0 {
		t.Errorf("no checkpoint event after CLI checkpoint: %+v", evs)
	}
	if countByType(evs, "wal_truncate") == 0 {
		t.Errorf("no wal_truncate event after CLI checkpoint: %+v", evs)
	}

	// Crash-restart with -recover: the recovery lands in a fresh journal.
	dCmd.Process.Signal(syscall.SIGTERM)
	dCmd.Wait()
	_, rMaddr, _ := startDaemonWith(t, fidrdBin,
		"-data-file", dataFile, "-table-file", tableFile, "-wal-file", walFile, "-recover")
	evs = eventsScrape(t, rMaddr, "")
	if countByType(evs, "recovery") != 1 {
		t.Errorf("recovered daemon journaled %d recovery events, want 1: %+v",
			countByType(evs, "recovery"), evs)
	}
	for _, ev := range evs {
		if ev.Type == "recovery" {
			if _, ok := ev.Fields["replayed_records"]; !ok {
				t.Errorf("recovery event lacks replay accounting: %+v", ev)
			}
		}
	}
}
