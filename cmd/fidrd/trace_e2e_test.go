package main

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"fidr"
	"fidr/internal/metrics"
)

// End-to-end exercise of the distributed-tracing plane: a real cluster
// daemon (2 groups, group-local WALs), traced writes issued by the real
// CLI, and the returned trace IDs resolved back to span trees that
// cover every layer — proto listener, async queue, core request, batch
// pipeline, WAL fsync. CI's check-trace step runs this test.

// startDaemonArgs is startDaemon with extra daemon flags.
func startDaemonArgs(t *testing.T, bin string, extra ...string) (addr, maddr string) {
	t.Helper()
	addr, maddr = freePort(t), freePort(t)
	args := append([]string{
		"-addr", addr, "-metrics-addr", maddr,
		"-series-interval", "50ms", "-slow-min", "1ns",
	}, extra...)
	cmd := exec.Command(bin, args...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + maddr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return addr, maddr
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("fidrd %v did not become ready", extra)
	return "", ""
}

var traceLineRe = regexp.MustCompile(`(?m)^trace ([0-9a-f]{16})\b`)

func TestTraceE2E(t *testing.T) {
	dir := t.TempDir()
	fidrdBin, fidrcliBin := buildBinaries(t, dir)
	// Small batches so every CLI put batch tips several accelerator
	// batches, putting hash/compress/WAL spans inside the wire trace.
	addr, maddr := startDaemonArgs(t, fidrdBin, "-arch", "fidr",
		"-groups", "2", "-batch", "4", "-wal-file", filepath.Join(dir, "wal"))

	// The daemon opened one WAL per group.
	for _, g := range []string{"wal.g0", "wal.g1"} {
		if _, err := os.Stat(filepath.Join(dir, g)); err != nil {
			t.Fatalf("group-local WAL missing: %v", err)
		}
	}

	// 64 chunks with some duplicate content, via the real CLI with
	// tracing on: one trace ID per 32-chunk wire batch.
	input := filepath.Join(dir, "input.bin")
	var blob []byte
	for i := 0; i < 64; i++ {
		blob = append(blob, fidr.MakeChunk(uint64(i%24), 0.5)...)
	}
	if err := os.WriteFile(input, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(fidrcliBin, "put",
		"-addr", addr, "-file", input, "-traced").CombinedOutput()
	if err != nil {
		t.Fatalf("fidrcli put -traced: %v\n%s", err, out)
	}
	ids := traceLineRe.FindAllStringSubmatch(string(out), -1)
	if len(ids) != 2 {
		t.Fatalf("expected 2 trace IDs from 64 chunks, got %d:\n%s", len(ids), out)
	}

	// Acceptance criterion: the returned trace ID resolves to a span
	// tree covering proto -> async queue -> core -> batch -> WAL.
	id := ids[0][1]
	code, tree := get(t, maddr, "/traces/spans?id="+id)
	if code != http.StatusOK {
		t.Fatalf("/traces/spans?id=%s: status %d: %s", id, code, tree)
	}
	for _, stage := range []string{
		"proto.write_batch", "async.queue", "core.awrite",
		"core.batch", "hash", "wal_fsync",
	} {
		if !strings.Contains(tree, stage) {
			t.Errorf("span tree missing %q:\n%s", stage, tree)
		}
	}

	// The same tree through the CLI verb.
	out, err = exec.Command(fidrcliBin, "trace", "-metrics-addr", maddr, id).CombinedOutput()
	if err != nil {
		t.Fatalf("fidrcli trace %s: %v\n%s", id, err, out)
	}
	if !strings.Contains(string(out), "async.queue") || !strings.Contains(string(out), "wal_fsync") {
		t.Errorf("fidrcli trace output incomplete:\n%s", out)
	}

	// Unknown and malformed IDs fail with actionable errors.
	out, err = exec.Command(fidrcliBin, "trace", "-metrics-addr", maddr, "deadbeefdeadbeef").CombinedOutput()
	if err == nil {
		t.Errorf("fidrcli trace of unknown ID exited 0:\n%s", out)
	} else if !strings.Contains(string(out), "not found") {
		t.Errorf("unknown-ID error lacks explanation:\n%s", out)
	}
	out, err = exec.Command(fidrcliBin, "trace", "-metrics-addr", maddr, "not-hex").CombinedOutput()
	if err == nil {
		t.Errorf("fidrcli trace of malformed ID exited 0:\n%s", out)
	} else if !strings.Contains(string(out), "bad trace ID") {
		t.Errorf("malformed-ID error lacks explanation:\n%s", out)
	}

	// Exemplars: the Prometheus page carries trace IDs on latency
	// buckets, still lexes, and a scraped exemplar resolves to a span
	// tree — the p99-to-trace jump the issue asks for.
	code, prom := get(t, maddr, "/metrics?format=prom")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=prom: status %d", code)
	}
	if err := metrics.ValidatePromText(strings.NewReader(prom)); err != nil {
		t.Errorf("exposition with exemplars does not lex: %v", err)
	}
	exRe := regexp.MustCompile(`# \{trace_id="([0-9a-f]{1,16})"\}`)
	m := exRe.FindStringSubmatch(prom)
	if m == nil {
		t.Fatalf("no exemplar on the Prometheus page:\n%.2000s", prom)
	}
	if code, body := get(t, maddr, "/traces/spans?id="+m[1]); code != http.StatusOK {
		t.Errorf("exemplar trace %s does not resolve: status %d: %s", m[1], code, body)
	}

	// SLO plane: JSON endpoint and CLI dashboard.
	time.Sleep(150 * time.Millisecond) // a few SLO sampling ticks
	code, body := get(t, maddr, "/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo: status %d", code)
	}
	var d metrics.SLODump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("/slo JSON: %v", err)
	}
	if len(d.Objectives) != 4 {
		t.Errorf("/slo has %d objectives, want 4 defaults", len(d.Objectives))
	}
	for _, o := range d.Objectives {
		if o.BurnFast < 0 || o.BudgetRemaining > 1 {
			t.Errorf("objective %s has nonsense status: %+v", o.Name, o)
		}
	}
	out, err = exec.Command(fidrcliBin, "slo", "-metrics-addr", maddr).CombinedOutput()
	if err != nil {
		t.Fatalf("fidrcli slo: %v\n%s", err, out)
	}
	for _, want := range []string{"write-h", "read", "budget left"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("fidrcli slo output missing %q:\n%s", want, out)
		}
	}
}
