package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"fidr"
	"fidr/internal/metrics"
	"fidr/internal/proto"
)

// End-to-end exercise of the daemon's observability surface: build the
// real binaries, start fidrd, drive writes over the wire, and validate
// every HTTP endpoint plus the fidrcli top/slow views against it. CI's
// check-metrics step runs this test; the Prometheus page additionally
// goes through the same lexer a scraper would apply, so an encoder
// regression fails the build.

// buildBinaries compiles fidrd and fidrcli into dir.
func buildBinaries(t *testing.T, dir string) (fidrdBin, fidrcliBin string) {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	fidrdBin = filepath.Join(dir, "fidrd")
	fidrcliBin = filepath.Join(dir, "fidrcli")
	for bin, pkg := range map[string]string{fidrdBin: "fidr/cmd/fidrd", fidrcliBin: "fidr/cmd/fidrcli"} {
		cmd := exec.Command(goBin, "build", "-o", bin, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return fidrdBin, fidrcliBin
}

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

// startDaemon launches fidrd and waits until /readyz answers 200.
func startDaemon(t *testing.T, bin, arch string) (addr, maddr string) {
	t.Helper()
	addr, maddr = freePort(t), freePort(t)
	cmd := exec.Command(bin,
		"-addr", addr, "-metrics-addr", maddr, "-arch", arch,
		"-series-interval", "50ms", "-slow-min", "1ns")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + maddr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return addr, maddr
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("fidrd (%s) did not become ready", arch)
	return "", ""
}

func get(t *testing.T, maddr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + maddr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// drive writes n chunks (half duplicate content) over the protocol.
func drive(t *testing.T, addr string, n int) {
	t.Helper()
	c, err := proto.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < n; i++ {
		if err := c.WriteChunk(uint64(i), fidr.MakeChunk(uint64(i%(n/2)), 0.5)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

// seriesLast scrapes /metrics/series and returns each series' newest
// value by name.
func seriesLast(t *testing.T, maddr string) map[string]float64 {
	t.Helper()
	code, body := get(t, maddr, "/metrics/series")
	if code != http.StatusOK {
		t.Fatalf("/metrics/series: status %d", code)
	}
	var d metrics.SeriesDump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("/metrics/series: %v", err)
	}
	out := make(map[string]float64, len(d.Series))
	for _, se := range d.Series {
		out[se.Name] = se.Last
	}
	return out
}

func TestMetricsEndpointE2E(t *testing.T) {
	dir := t.TempDir()
	fidrdBin, fidrcliBin := buildBinaries(t, dir)
	addr, maddr := startDaemon(t, fidrdBin, "fidr")
	drive(t, addr, 128)
	time.Sleep(200 * time.Millisecond) // a few 50ms sampling ticks

	// Liveness and readiness.
	if code, _ := get(t, maddr, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz: status %d", code)
	}
	if code, _ := get(t, maddr, "/readyz"); code != http.StatusOK {
		t.Errorf("/readyz: status %d", code)
	}

	// Plain dump and Prometheus exposition; the latter must lex clean.
	if code, body := get(t, maddr, "/metrics"); code != http.StatusOK || !strings.Contains(body, "core.writes") {
		t.Errorf("/metrics: status %d, body %.80q", code, body)
	}
	code, prom := get(t, maddr, "/metrics?format=prom")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=prom: status %d", code)
	}
	if err := metrics.ValidatePromText(strings.NewReader(prom)); err != nil {
		t.Errorf("prometheus exposition does not lex: %v", err)
	}

	// Sampled series carry the data-movement plane.
	last := seriesLast(t, maddr)
	if last["core.writes"] != 128 {
		t.Errorf("series core.writes = %v, want 128", last["core.writes"])
	}
	if last["pcie.p2p_bytes"] <= 0 {
		t.Errorf("FIDR moved no P2P bytes (pcie.p2p_bytes = %v)", last["pcie.p2p_bytes"])
	}

	// Trace ring and flight recorder (1ns floor => every early request
	// was captured).
	if code, body := get(t, maddr, "/traces"); code != http.StatusOK || !strings.Contains(body, "write") {
		t.Errorf("/traces: status %d, body %.80q", code, body)
	}
	if code, body := get(t, maddr, "/traces/slow"); code != http.StatusOK || !strings.Contains(body, "slow request") {
		t.Errorf("/traces/slow: status %d, body %.80q", code, body)
	}

	// fidrcli against the live daemon.
	for _, args := range [][]string{
		{"top", "-metrics-addr", maddr, "-n", "1"},
		{"slow", "-metrics-addr", maddr},
		{"stats", "-metrics-addr", maddr},
	} {
		out, err := exec.Command(fidrcliBin, args...).CombinedOutput()
		if err != nil {
			t.Errorf("fidrcli %v: %v\n%s", args, err, out)
		}
		if args[0] == "top" && !strings.Contains(string(out), "device utilization") {
			t.Errorf("fidrcli top output missing utilization table:\n%s", out)
		}
	}

	// The CLI satellite: a dead endpoint must exit non-zero with a
	// pointer to the fix.
	dead := freePort(t)
	out, err := exec.Command(fidrcliBin, "stats", "-metrics-addr", dead).CombinedOutput()
	if err == nil {
		t.Errorf("fidrcli stats against dead endpoint exited 0:\n%s", out)
	}
	if !strings.Contains(string(out), "-metrics-addr") {
		t.Errorf("dead-endpoint error lacks guidance:\n%s", out)
	}
}

// TestHostDRAMPayloadInvariantE2E scrapes the acceptance-criterion
// counters from live daemons: a FIDR-mode write workload charges zero
// client-payload bytes to host DRAM, the baseline charges plenty.
func TestHostDRAMPayloadInvariantE2E(t *testing.T) {
	dir := t.TempDir()
	fidrdBin, _ := buildBinaries(t, dir)
	payload := make(map[string]float64)
	for _, arch := range []string{"fidr", "baseline"} {
		addr, maddr := startDaemon(t, fidrdBin, arch)
		drive(t, addr, 64)
		time.Sleep(200 * time.Millisecond)
		last := seriesLast(t, maddr)
		if last["hostmodel.dram_bytes"] <= 0 {
			t.Errorf("%s: hostmodel.dram_bytes = %v, want > 0 (metadata always flows)", arch, last["hostmodel.dram_bytes"])
		}
		payload[arch] = last["hostmodel.dram_payload_bytes"]
	}
	if payload["fidr"] != 0 {
		t.Errorf("FIDR writes moved %v payload bytes through host DRAM, want 0", payload["fidr"])
	}
	if payload["baseline"] <= 0 {
		t.Errorf("baseline writes moved %v payload bytes through host DRAM, want > 0", payload["baseline"])
	}
	if t.Failed() {
		t.Logf("payload bytes by arch: %v", payload)
	}
}
