// Command fidrd runs a FIDR (or baseline) storage server speaking the
// simplified storage protocol of §6.2 over TCP.
//
// Usage:
//
//	fidrd [-addr :9400] [-arch fidr|fidr-nic|baseline] [-batch 64]
//	      [-metrics-addr :9401] [-metrics-interval 10s]
//
// With -metrics-addr the server exposes its live metrics registry over
// HTTP: GET /metrics dumps counters, gauges and per-stage latency
// histograms in plain text; GET /traces dumps the most recent request
// traces. With -metrics-interval it also logs a one-line summary
// periodically. On SIGINT or SIGTERM the server flushes open containers
// and reports reduction and resource statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fidr"
	"fidr/internal/core"
	"fidr/internal/metrics"
	"fidr/internal/proto"
	"fidr/internal/ssd"
)

func main() {
	addr := flag.String("addr", ":9400", "listen address")
	arch := flag.String("arch", "fidr", "architecture: fidr, fidr-nic, baseline")
	batch := flag.Int("batch", 64, "accelerator batch size in chunks")
	width := flag.Int("width", 4, "HW tree concurrent update width")
	dataFile := flag.String("data-file", "", "file-backed data volume (durable); empty = in-memory")
	tableFile := flag.String("table-file", "", "file-backed table volume (durable); empty = in-memory")
	recover := flag.Bool("recover", false, "recover state from a checkpoint on the table volume")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address serving /metrics and /traces; empty = disabled")
	metricsInterval := flag.Duration("metrics-interval", 0, "log a metrics summary at this interval; 0 = disabled")
	traces := flag.Int("traces", 256, "recent request traces kept for /traces")
	flag.Parse()

	var a fidr.Arch
	switch *arch {
	case "fidr":
		a = fidr.FIDRFull
	case "fidr-nic":
		a = fidr.FIDRNicP2P
	case "baseline":
		a = fidr.Baseline
	default:
		log.Fatalf("fidrd: unknown architecture %q", *arch)
	}
	cfg := fidr.DefaultConfig(a)
	cfg.BatchChunks = *batch
	cfg.UpdateWidth = *width
	if err := attachVolumes(&cfg, *dataFile, *tableFile); err != nil {
		log.Fatalf("fidrd: %v", err)
	}
	var srv *fidr.Server
	var err error
	if *recover {
		if cfg.DataSSD == nil || cfg.TableSSD == nil {
			log.Fatal("fidrd: -recover requires -data-file and -table-file")
		}
		srv, err = core.RecoverServer(cfg)
	} else {
		srv, err = fidr.NewServer(cfg)
	}
	if err != nil {
		log.Fatalf("fidrd: %v", err)
	}
	durable := cfg.DataSSD != nil && cfg.TableSSD != nil
	// Attach the live registry before serving: the HTTP endpoint and the
	// interval logger read only registry atomics, so they are safe
	// alongside the protocol listener.
	reg := srv.EnableObservability(nil, *traces)
	l, err := proto.Serve(srv, *addr)
	if err != nil {
		log.Fatalf("fidrd: %v", err)
	}
	log.Printf("fidrd: %s server listening on %s", a, l.Addr())

	if *metricsAddr != "" {
		h := metrics.HTTPHandler(reg, func() string {
			return core.RenderTraces(srv.RecentTraces())
		})
		go func() {
			log.Printf("fidrd: metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, h); err != nil {
				log.Printf("fidrd: metrics server: %v", err)
			}
		}()
	}
	if *metricsInterval > 0 {
		go logMetrics(reg, *metricsInterval)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("fidrd: shutting down")
	if err := l.Close(); err != nil {
		log.Printf("fidrd: close: %v", err)
	}
	if durable {
		if err := srv.Checkpoint(); err != nil {
			log.Printf("fidrd: checkpoint: %v", err)
		} else {
			log.Printf("fidrd: checkpoint written; restart with -recover to resume")
		}
	} else if err := srv.Flush(); err != nil {
		log.Printf("fidrd: flush: %v", err)
	}
	st := srv.Stats()
	snap := srv.Ledger().Snapshot()
	fmt.Printf("writes=%d reads=%d unique=%d duplicate=%d stored/client=%.3f\n",
		st.ClientWrites, st.ClientReads, st.UniqueChunks, st.DuplicateChunks, st.ReductionRatio())
	fmt.Printf("host-memory B/B=%.3f host-CPU ns/B=%.3f cache-hit=%.3f\n",
		snap.MemPerClientByte(), snap.CPUNanosPerClientByte(), srv.CacheStats().HitRate())
}

// logMetrics periodically logs a one-line summary from the registry.
func logMetrics(reg *metrics.Registry, every time.Duration) {
	writes := reg.Counter("core.writes")
	reads := reg.Counter("core.reads")
	dups := reg.Counter("core.dup_chunks")
	uniques := reg.Counter("core.unique_chunks")
	stored := reg.Counter("core.stored_bytes")
	client := reg.Counter("core.client_bytes")
	ack := reg.Histogram("latency.write_ack.ns")
	for range time.Tick(every) {
		s := ack.Snapshot()
		log.Printf("fidrd: writes=%d reads=%d unique=%d duplicate=%d stored=%s client=%s write-ack p50=%v p99=%v",
			writes.Value(), reads.Value(), uniques.Value(), dups.Value(),
			metrics.Bytes(stored.Value()), metrics.Bytes(client.Value()),
			time.Duration(s.P50), time.Duration(s.P99))
	}
}

// attachVolumes wires file-backed devices into the config. Both or
// neither must be set for a durable deployment.
func attachVolumes(cfg *fidr.Config, dataFile, tableFile string) error {
	if (dataFile == "") != (tableFile == "") {
		return fmt.Errorf("set both -data-file and -table-file (or neither)")
	}
	if dataFile == "" {
		return nil
	}
	dcfg := ssd.Samsung970Pro("data-ssd")
	dcfg.BackingFile = dataFile
	dev, err := ssd.New(dcfg)
	if err != nil {
		return err
	}
	tcfg := ssd.Samsung970Pro("table-ssd")
	tcfg.BackingFile = tableFile
	tcfg.CapacityBytes = 1 << 40
	tdev, err := ssd.New(tcfg)
	if err != nil {
		return err
	}
	cfg.DataSSD = dev
	cfg.TableSSD = tdev
	return nil
}
