// Command fidrd runs a FIDR (or baseline) storage server speaking the
// simplified storage protocol of §6.2 over TCP.
//
// Usage:
//
//	fidrd [-addr :9400] [-arch fidr|fidr-nic|baseline] [-batch 64]
//	      [-groups 1] [-metrics-addr :9401] [-metrics-interval 10s]
//	      [-events 1024] [-gc-threshold 0.25] [-pprof]
//	      [-health-dir DIR] [-health-snapshots 8] [-health-profile 0]
//	      [-watchdog-interval 250ms] [-watchdog-deadline 2s]
//	      [-chunker fixed|cdc] [-cdc-min N] [-cdc-avg N] [-cdc-max N]
//
// -chunker=cdc switches writes to content-defined, variable-size
// chunking: each Write is a stream segment at an absolute byte offset,
// cut into extents by the skip-ahead gear chunker; reads address the
// extent start offsets. Per-chunk raw sizes live only in memory, so CDC
// is in-memory single-group only (no -wal-file, -data-file, -recover,
// or -groups > 1).
//
// With -groups N > 1 the daemon serves a §5.6 scale-out cluster: N
// device groups, each a full server, with client LBAs sharded across
// them (in-memory volumes only; incompatible with -data-file/-recover).
// -wal-file works in cluster mode too: each group journals to its own
// group-local log at <wal-file>.g<N> (fresh logs every start; cluster
// recovery is not implemented yet).
//
// All requests flow through an async front-end (the software shape of
// the paper's device manager): bounded per-group queues feed worker-
// owned servers, so the protocol listener serves connections
// concurrently. -queue-depth bounds the per-group queue.
//
// The daemon traces requests end to end. Wire requests carrying a
// trace context (fidrcli put -trace, the traced client API) are always
// traced; -trace-sample N additionally head-samples every Nth
// untraced request. Completed span trees land in a ring served at
// /traces/spans?id=<trace-id>, and sampled requests tag latency-
// histogram buckets with their trace ID (OpenMetrics exemplars on
// /metrics?format=prom). -slo-spec declares latency objectives
// (name:hist:threshold:target,...) evaluated into error budgets and
// multiwindow burn rates at /slo; the default objectives cover the
// write and read request classes.
//
// With -data-file/-table-file the volumes are durable; adding
// -wal-file writes every table/refcount/LBA mutation to a group-local
// write-ahead log, so a crash between checkpoints loses nothing that
// was committed: restart with -recover to replay the log over the last
// checkpoint (fidrfsck -wal-file checks such a volume offline).
//
// With -metrics-addr the server exposes its live metrics over HTTP:
// GET /metrics dumps counters, gauges and per-stage latency histograms
// in plain text, GET /metrics?format=prom emits Prometheus text
// exposition, GET /metrics/series serves sampled time series (windowed
// min/mean/max, counter rates, device duty cycles) as JSON, GET /traces
// dumps the most recent request traces, GET /traces/slow dumps the
// slow-request flight recorder, and GET /healthz and /readyz serve
// liveness/readiness probes. The capacity plane adds GET /capacity (the
// reduction-attribution ledger, garbage debt and GC advice as JSON,
// with ?threshold= overriding -gc-threshold), GET /capacity/containers
// (the container heatmap bucketed by dead fraction and age band), and
// GET /events (the structured event journal — GC runs, checkpoints,
// WAL truncation, recovery, SLO breach transitions — as JSONL, sized by
// -events and tailable with ?since=). In cluster mode the registry
// carries merged cluster-wide series, "group<N>."-prefixed per-group
// series, and derived shard-balance gauges; capacity views merge across
// groups and all groups share one event journal. -pprof additionally
// mounts
// net/http/pprof under /debug/pprof/ on the same address. With
// -metrics-interval the daemon also logs a one-line summary
// periodically. On SIGINT or SIGTERM the server flushes open containers
// and reports reduction and resource statistics.
//
// The runtime health plane watches the daemon itself. Go runtime
// metrics (goroutines, heap, GC pause and scheduler-latency histograms)
// join the metrics view under "runtime.*", next to a labeled build_info
// gauge. A watchdog probes subsystem liveness every -watchdog-interval:
// per-worker async heartbeats and stuck queues, in-flight WAL fsyncs,
// and the protocol accept loop; a probe past -watchdog-deadline emits a
// watchdog_stall event into /events (with the stalled request's trace
// ID when sampled) and, when -health-dir is set, trips the black-box
// flight recorder — a bounded ring of -health-snapshots on-disk
// diagnostic snapshots (goroutine dump, metrics, event tail, slow
// traces, and a CPU+mutex profile of -health-profile length when > 0),
// captured on watchdog trips and SLO breach edges and served as a
// tarball at /debug/bundle. `fidrcli doctor` fetches all of it and
// renders a pass/warn/fail report. -debug-hooks additionally mounts
// POST /debug/stall?d=2s (inject an async-worker stall; test harnesses
// only, never production).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"fidr"
	"fidr/internal/chunk"
	"fidr/internal/core"
	"fidr/internal/hostmodel"
	"fidr/internal/metrics"
	"fidr/internal/metrics/health"
	"fidr/internal/proto"
	"fidr/internal/ssd"
	"fidr/internal/trace/span"
)

// Build identity, stamped by the Makefile:
//
//	go build -ldflags "-X main.buildVersion=... -X main.buildCommit=..."
//
// Plain `go build` leaves the dev/none defaults, so the binary always
// has a truthful build_info gauge.
var (
	buildVersion = "dev"
	buildCommit  = "none"
)

func main() {
	addr := flag.String("addr", ":9400", "listen address")
	arch := flag.String("arch", "fidr", "architecture: fidr, fidr-nic, baseline")
	batch := flag.Int("batch", 64, "accelerator batch size in chunks")
	containerSize := flag.Int("container-size", 0, "compressed-chunk container size in bytes; 0 = architecture default")
	width := flag.Int("width", 4, "HW tree concurrent update width")
	hashLanes := flag.Int("hash-lanes", 0, "NIC hash-core lanes; 0 = GOMAXPROCS-derived")
	compressLanes := flag.Int("compress-lanes", 0, "compression-pipeline lanes; 0 = GOMAXPROCS-derived")
	groups := flag.Int("groups", 1, "device groups; >1 serves a sharded cluster (in-memory only)")
	dataFile := flag.String("data-file", "", "file-backed data volume (durable); empty = in-memory")
	tableFile := flag.String("table-file", "", "file-backed table volume (durable); empty = in-memory")
	walFile := flag.String("wal-file", "", "write-ahead log file; mutations since the last checkpoint survive a crash (requires -data-file)")
	recover := flag.Bool("recover", false, "recover state from a checkpoint on the table volume (and replay -wal-file when set)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address serving /metrics and /traces; empty = disabled")
	metricsInterval := flag.Duration("metrics-interval", 0, "log a metrics summary at this interval; 0 = disabled")
	traces := flag.Int("traces", 256, "recent request traces kept for /traces")
	seriesInterval := flag.Duration("series-interval", time.Second, "sampling interval for /metrics/series")
	seriesSamples := flag.Int("series-samples", 300, "samples retained per series for /metrics/series")
	slowQuantile := flag.Float64("slow-quantile", 0.99, "flight recorder captures requests above this total-latency quantile")
	slowMin := flag.Duration("slow-min", time.Millisecond, "flight recorder never flags requests faster than this")
	slowTraces := flag.Int("slow-traces", 64, "slow request captures kept for /traces/slow")
	queueDepth := flag.Int("queue-depth", 64, "async front-end per-group queue depth")
	traceSample := flag.Int("trace-sample", 0, "head-sample every Nth untraced request into the span ring; 0 = wire-traced requests only")
	traceRing := flag.Int("trace-ring", 512, "distinct traces kept for /traces/spans")
	sloSpec := flag.String("slo-spec", "", "latency objectives as name:hist:threshold:target,...; empty = built-in write/read objectives")
	eventsCap := flag.Int("events", 1024, "structured events kept for /events")
	gcThreshold := flag.Float64("gc-threshold", 0.25, "default dead-fraction threshold for /capacity GC advice (override per scrape with ?threshold=)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on -metrics-addr")
	healthDir := flag.String("health-dir", "", "flight-recorder snapshot directory; empty = recorder disabled")
	healthSnapshots := flag.Int("health-snapshots", 8, "diagnostic snapshots retained in -health-dir")
	healthProfile := flag.Duration("health-profile", 0, "CPU+mutex profile length captured into each snapshot; 0 = no profiles")
	watchdogInterval := flag.Duration("watchdog-interval", 250*time.Millisecond, "liveness probe cadence")
	watchdogDeadline := flag.Duration("watchdog-deadline", 2*time.Second, "liveness deadline before a probe reports a stall")
	debugHooks := flag.Bool("debug-hooks", false, "mount fault-injection hooks (POST /debug/stall) on -metrics-addr; test harnesses only")
	chunker := flag.String("chunker", "fixed", "write chunking mode: fixed or cdc (content-defined, variable-size extents; in-memory single group only)")
	cdcMin := flag.Int("cdc-min", 0, "CDC minimum chunk bytes; 0 = default")
	cdcAvg := flag.Int("cdc-avg", 0, "CDC average (target) chunk bytes; 0 = default")
	cdcMax := flag.Int("cdc-max", 0, "CDC maximum chunk bytes; 0 = default")
	flag.Parse()

	var a fidr.Arch
	switch *arch {
	case "fidr":
		a = fidr.FIDRFull
	case "fidr-nic":
		a = fidr.FIDRNicP2P
	case "baseline":
		a = fidr.Baseline
	default:
		log.Fatalf("fidrd: unknown architecture %q", *arch)
	}
	cfg := fidr.DefaultConfig(a)
	cfg.BatchChunks = *batch
	if *containerSize > 0 {
		cfg.ContainerSize = *containerSize
	}
	cfg.UpdateWidth = *width
	cfg.HashLanes = *hashLanes
	cfg.CompressLanes = *compressLanes
	if *groups < 1 {
		log.Fatalf("fidrd: -groups %d", *groups)
	}
	mode, err := chunk.ParseMode(*chunker)
	if err != nil {
		log.Fatalf("fidrd: -chunker: %v", err)
	}
	if mode == chunk.ModeCDC {
		// CDC servers keep per-chunk raw sizes in memory only: no WAL, no
		// checkpoint, no shutdown persistence — so no durable volumes or
		// recovery, and no cluster (extent sharding is fixed-index).
		if *walFile != "" || *dataFile != "" || *tableFile != "" || *recover {
			log.Fatal("fidrd: -chunker=cdc is in-memory only (per-chunk raw sizes are not persisted); drop -wal-file/-data-file/-table-file/-recover")
		}
		if *groups > 1 {
			log.Fatal("fidrd: -chunker=cdc requires -groups 1")
		}
		cfg.Chunking = chunk.Config{Mode: mode, Min: *cdcMin, Avg: *cdcAvg, Max: *cdcMax}
	}

	// The store behind the listener, plus its observability surface.
	// col collects completed span trees from every layer; front holds
	// the front-end's own series (async queue, proto listener, SLO
	// gauges) alongside the back-end view.
	col := span.NewCollector(*traceRing)
	front := metrics.NewRegistry()
	// One journal across all groups: GC runs, checkpoints, WAL
	// truncation, recovery and SLO breaches interleave in one sequence.
	journal := fidr.NewEventJournal(*eventsCap)
	var (
		backend  fidr.Store
		view     metrics.Gatherer
		traceFn  func() string
		slowFn   func() string
		shutdown func()
		// wals collects every group-local log so the health watchdog can
		// probe in-flight fsyncs (one entry per group, or one total in
		// single-server mode).
		wals []*core.WAL
	)
	if *groups > 1 {
		if *dataFile != "" || *tableFile != "" || *recover {
			log.Fatal("fidrd: -groups > 1 is incompatible with -data-file/-table-file/-recover")
		}
		var cl *fidr.Cluster
		var err error
		if *walFile != "" {
			// Group-local logs, like a group's SSDs: one file per group.
			cl, err = fidr.NewClusterWAL(cfg, *groups, func(g int) (*core.WAL, error) {
				w, werr := core.OpenWALFile(fmt.Sprintf("%s.g%d", *walFile, g))
				if werr != nil {
					return nil, werr
				}
				// Cluster mode has no recovery path yet; never replay a
				// previous deployment's log.
				if werr := w.Reset(); werr != nil {
					return nil, werr
				}
				wals = append(wals, w)
				return w, nil
			})
		} else {
			cl, err = fidr.NewCluster(cfg, *groups)
		}
		if err != nil {
			log.Fatalf("fidrd: %v", err)
		}
		view = cl.EnableObservability(*traces)
		cl.ConfigureFlightRecorder(*slowQuantile, *slowMin, *slowTraces)
		cl.SetSpanCollector(col)
		cl.SetTraceSampling(*traceSample)
		cl.SetEventJournal(journal)
		traceFn = func() string { return core.RenderTraces(cl.RecentTraces()) }
		slowFn = func() string { return core.RenderSlowTraces(cl.SlowTraces()) }
		backend = cl
		shutdown = func() {
			report(cl.Stats(), cl.Snapshot(), -1)
		}
	} else {
		if err := attachVolumes(&cfg, *dataFile, *tableFile); err != nil {
			log.Fatalf("fidrd: %v", err)
		}
		var wal *core.WAL
		if *walFile != "" {
			if cfg.DataSSD == nil {
				log.Fatal("fidrd: -wal-file requires -data-file and -table-file")
			}
			w, err := core.OpenWALFile(*walFile)
			if err != nil {
				log.Fatalf("fidrd: wal: %v", err)
			}
			if !*recover {
				// A fresh start must not replay a previous deployment's
				// log over an empty server.
				if err := w.Reset(); err != nil {
					log.Fatalf("fidrd: wal reset: %v", err)
				}
			}
			cfg.WAL = w
			wal = w
			wals = append(wals, w)
		}
		var srv *fidr.Server
		var err error
		if *recover {
			if cfg.DataSSD == nil || cfg.TableSSD == nil {
				log.Fatal("fidrd: -recover requires -data-file and -table-file")
			}
			srv, err = core.RecoverServer(cfg)
		} else {
			srv, err = fidr.NewServer(cfg)
		}
		if err != nil {
			log.Fatalf("fidrd: %v", err)
		}
		if *recover && wal != nil {
			rr := srv.LastRecovery()
			log.Printf("fidrd: replayed %d WAL records (checkpoint seq %d, genesis=%v)",
				rr.ReplayedRecords, rr.CheckpointSeq, rr.FromGenesis)
		}
		durable := cfg.DataSSD != nil && cfg.TableSSD != nil
		// Attach the live registry before serving: the HTTP endpoint and
		// the interval logger read only registry atomics, so they are
		// safe alongside the protocol listener.
		view = srv.EnableObservability(nil, *traces)
		// Single-server views derive the capacity ratios here; the
		// cluster view already appends them over its merged counters.
		view = metrics.Multi(view, metrics.CapacityRatios(view))
		srv.ConfigureFlightRecorder(*slowQuantile, *slowMin, *slowTraces)
		srv.SetSpanCollector(col, 0)
		srv.SetTraceSampling(*traceSample)
		srv.SetEventJournal(journal, 0)
		traceFn = func() string { return core.RenderTraces(srv.RecentTraces()) }
		slowFn = func() string { return core.RenderSlowTraces(srv.SlowTraces()) }
		backend = srv
		shutdown = func() {
			if durable {
				if err := srv.Checkpoint(); err != nil {
					log.Printf("fidrd: checkpoint: %v", err)
				} else {
					log.Printf("fidrd: checkpoint written; restart with -recover to resume")
				}
				if wal != nil {
					if err := wal.Close(); err != nil {
						log.Printf("fidrd: wal close: %v", err)
					}
				}
			}
			report(srv.Stats(), srv.Ledger().Snapshot(), srv.CacheStats().HitRate())
		}
	}

	// The async front-end owns the store(s): one worker per group, with
	// bounded queues for backpressure. Its Close drains the queues and
	// flushes every group, so shutdown needs no explicit Flush.
	async, err := fidr.NewAsync(backend, *queueDepth)
	if err != nil {
		log.Fatalf("fidrd: %v", err)
	}
	async.EnableObservability(front)
	async.SetSpanCollector(col)
	store, err := fidr.NewAsyncStore(async, cfg.ChunkSize)
	if err != nil {
		log.Fatalf("fidrd: %v", err)
	}
	// Health plane, part 1: the process-wide series. The runtime bridge,
	// build_info and queue-depth gauges are mounted exactly once at the
	// top of the composed view — never inside the per-group registries —
	// so cluster merge semantics cannot multiply process-wide gauges.
	view = metrics.Multi(view, front, metrics.JournalStats(journal),
		health.Runtime(), health.BuildInfo(buildVersion, buildCommit),
		async.DepthGatherer())

	// Health plane, part 2: subsystem liveness. One heartbeat probe and
	// one stuck-queue probe per async worker, one fsync-deadline probe
	// per WAL; the accept-loop probe joins after the listener is up.
	watchdog := health.NewWatchdog()
	watchdog.Instrument(front)
	watchdog.SetEventJournal(journal)
	for i := 0; i < async.Workers(); i++ {
		watchdog.Add(health.HeartbeatProbe(
			fmt.Sprintf("async.worker.g%d", i), async.WorkerHeartbeat(i), *watchdogDeadline))
		watchdog.Add(health.ProgressProbe(
			fmt.Sprintf("async.queue.g%d", i), *watchdogDeadline,
			func() int { return async.QueueDepth(i) }, async.Completed))
	}
	for i, w := range wals {
		deadline := *watchdogDeadline
		watchdog.Add(health.FuncProbe(
			fmt.Sprintf("wal.fsync.g%d", i), deadline, func() (bool, string) {
				d, inFlight := w.FsyncInFlight(time.Now())
				if !inFlight || d <= deadline {
					return false, ""
				}
				return true, "fsync in flight for " + d.Round(time.Millisecond).String()
			}))
	}

	// Health plane, part 3: the black-box flight recorder, armed when
	// -health-dir names a snapshot directory. Captures run off the
	// watchdog/SLO goroutines so probe cadence never blocks on disk.
	var recorder *health.Recorder
	if *healthDir != "" {
		var rerr error
		recorder, rerr = health.NewRecorder(health.RecorderOptions{
			Dir:             *healthDir,
			MaxSnapshots:    *healthSnapshots,
			ProfileDuration: *healthProfile,
			Gatherer:        view,
			Journal:         journal,
			Slow:            slowFn,
			Build: map[string]string{
				"version": buildVersion, "commit": buildCommit,
			},
		})
		if rerr != nil {
			log.Fatalf("fidrd: %v", rerr)
		}
		recorder.Instrument(front)
		watchdog.OnStall(func(probe, detail, trace string) {
			go func() {
				if _, err := recorder.Trigger(probe, detail, trace); err != nil {
					log.Printf("fidrd: snapshot: %v", err)
				}
			}()
		})
	}

	// SLO plane: latency objectives over the request-class histograms,
	// refreshed on the series cadence.
	objs := metrics.DefaultObjectives()
	if *sloSpec != "" {
		var perr error
		objs, perr = metrics.ParseObjectives(*sloSpec)
		if perr != nil {
			log.Fatalf("fidrd: -slo-spec: %v", perr)
		}
	}
	slo := metrics.NewSLO(view, objs, *seriesSamples)
	slo.Instrument(front)
	slo.SetEventJournal(journal)
	if recorder != nil {
		// An SLO breach is the other flight-recorder trigger: capture the
		// evidence while the burn is still visible in the histograms.
		slo.OnBreach(func(objective string) {
			go func() {
				if _, err := recorder.Trigger("slo."+objective, "error budget breached", ""); err != nil {
					log.Printf("fidrd: snapshot: %v", err)
				}
			}()
		})
	}
	stopSLO := make(chan struct{})
	defer close(stopSLO)
	go slo.Run(*seriesInterval, stopSLO)

	// Readiness flips once the protocol listener is accepting; the
	// metrics endpoint may come up first and must answer 503 until then.
	var ready atomic.Bool

	l, err := proto.Serve(store, *addr,
		proto.WithSpanCollector(col),
		proto.WithMetrics(front),
		// The async front serializes per group; connections need not
		// serialize against each other.
		proto.WithConcurrentStore())
	if err != nil {
		log.Fatalf("fidrd: %v", err)
	}
	ready.Store(true)
	watchdog.Add(health.FuncProbe("proto.accept", *watchdogDeadline, func() (bool, string) {
		if l.Accepting() {
			return false, ""
		}
		return true, "accept loop not running"
	}))
	stopWatchdog := make(chan struct{})
	defer close(stopWatchdog)
	go watchdog.Run(*watchdogInterval, stopWatchdog)
	if *groups > 1 {
		log.Printf("fidrd: %s cluster (%d groups) listening on %s", a, *groups, l.Addr())
	} else {
		log.Printf("fidrd: %s server listening on %s", a, l.Addr())
	}

	if *metricsAddr != "" {
		sampler := metrics.NewSampler(view, *seriesSamples)
		stopSampler := make(chan struct{})
		defer close(stopSampler)
		go sampler.Run(*seriesInterval, stopSampler)
		// Capacity views route through the async workers (the ledger is
		// single-writer per group), so a scrape waits for queued requests
		// ahead of it — bounded by the queue depth.
		capacityHandler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			th := *gcThreshold
			if q := r.URL.Query(); q.Has("threshold") {
				// strconv, not Sscanf: "0.5x" must be a 400, not a
				// silently truncated 0.5.
				v, err := strconv.ParseFloat(q.Get("threshold"), 64)
				if err != nil || v < 0 || v > 1 {
					metrics.HTTPBadParam(w, "threshold", q.Get("threshold"), "fraction in [0,1]")
					return
				}
				th = v
			}
			rep, err := store.CapacityReport(th)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(rep)
		})
		heatmapHandler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hm, err := store.ContainerHeatmap()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(hm)
		})
		// /debug/bundle always answers: the recorder when armed, a 503
		// that says how to arm it otherwise (so fidrcli doctor can tell
		// "disabled" apart from "unreachable").
		bundleHandler := http.Handler(recorder)
		if recorder == nil {
			bundleHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "flight recorder disabled; restart fidrd with -health-dir",
					http.StatusServiceUnavailable)
			})
		}
		mux := http.NewServeMux()
		mux.Handle("/", metrics.Handler(view, metrics.HandlerOptions{
			Traces:             traceFn,
			SlowTraces:         slowFn,
			Sampler:            sampler,
			Spans:              col,
			SLO:                slo,
			Capacity:           capacityHandler,
			CapacityContainers: heatmapHandler,
			Events:             journal,
			DebugBundle:        bundleHandler,
			Ready:              ready.Load,
		}))
		if *pprofFlag {
			// net/http/pprof registers on the default mux at import.
			mux.Handle("/debug/pprof/", http.DefaultServeMux)
		}
		if *debugHooks {
			// Fault injection for the watchdog's end-to-end test: wedge
			// async worker 0 for ?d= (default 3s). Gated behind an explicit
			// flag so production deployments can never reach it.
			mux.HandleFunc("/debug/stall", func(w http.ResponseWriter, r *http.Request) {
				d := 3 * time.Second
				if q := r.URL.Query(); q.Has("d") {
					v, err := time.ParseDuration(q.Get("d"))
					if err != nil || v <= 0 {
						metrics.HTTPBadParam(w, "d", q.Get("d"), "positive Go duration (e.g. 3s)")
						return
					}
					d = v
				}
				if err := async.InjectStall(d); err != nil {
					http.Error(w, err.Error(), http.StatusConflict)
					return
				}
				log.Printf("fidrd: debug hook: injected %v stall on async worker 0", d)
				fmt.Fprintf(w, "stalled worker 0 for %v\n", d)
			})
			log.Print("fidrd: -debug-hooks active: /debug/stall is mounted (never use in production)")
		}
		go func() {
			log.Printf("fidrd: metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("fidrd: metrics server: %v", err)
			}
		}()
	} else if *pprofFlag {
		log.Print("fidrd: -pprof requires -metrics-addr; ignoring")
	}
	if *metricsInterval > 0 {
		go logMetrics(view, *metricsInterval)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("fidrd: shutting down")
	if err := l.Close(); err != nil {
		log.Printf("fidrd: close: %v", err)
	}
	// Drain the queues and flush every group before the final report
	// (and, in durable mode, the checkpoint).
	if err := async.Close(); err != nil {
		log.Printf("fidrd: flush: %v", err)
	}
	shutdown()
}

// report prints the end-of-run summary. cacheHit < 0 means unavailable
// (cluster mode aggregates per-group caches into Stats instead).
func report(st fidr.Stats, snap hostmodel.Snapshot, cacheHit float64) {
	fmt.Printf("writes=%d reads=%d unique=%d duplicate=%d stored/client=%.3f\n",
		st.ClientWrites, st.ClientReads, st.UniqueChunks, st.DuplicateChunks, st.ReductionRatio())
	if cacheHit >= 0 {
		fmt.Printf("host-memory B/B=%.3f host-CPU ns/B=%.3f cache-hit=%.3f\n",
			snap.MemPerClientByte(), snap.CPUNanosPerClientByte(), cacheHit)
	} else {
		fmt.Printf("host-memory B/B=%.3f host-CPU ns/B=%.3f\n",
			snap.MemPerClientByte(), snap.CPUNanosPerClientByte())
	}
}

// logMetrics periodically logs a one-line summary from the gatherer
// (works for a single registry and for the cluster's merged view).
func logMetrics(g metrics.Gatherer, every time.Duration) {
	for range time.Tick(every) {
		var writes, reads, dups, uniques, stored, client float64
		var ack metrics.HistogramSnapshot
		for _, m := range g.Snapshot() {
			switch m.Name {
			case "core.writes":
				writes = m.Value
			case "core.reads":
				reads = m.Value
			case "core.dup_chunks":
				dups = m.Value
			case "core.unique_chunks":
				uniques = m.Value
			case "core.stored_bytes":
				stored = m.Value
			case "core.client_bytes":
				client = m.Value
			case "latency.write_ack.ns":
				ack = m.Hist
			}
		}
		log.Printf("fidrd: writes=%.0f reads=%.0f unique=%.0f duplicate=%.0f stored=%s client=%s write-ack p50=%v p99=%v",
			writes, reads, uniques, dups,
			metrics.Bytes(uint64(stored)), metrics.Bytes(uint64(client)),
			time.Duration(ack.P50), time.Duration(ack.P99))
	}
}

// attachVolumes wires file-backed devices into the config. Both or
// neither must be set for a durable deployment.
func attachVolumes(cfg *fidr.Config, dataFile, tableFile string) error {
	if (dataFile == "") != (tableFile == "") {
		return fmt.Errorf("set both -data-file and -table-file (or neither)")
	}
	if dataFile == "" {
		return nil
	}
	dcfg := ssd.Samsung970Pro("data-ssd")
	dcfg.BackingFile = dataFile
	dev, err := ssd.New(dcfg)
	if err != nil {
		return err
	}
	tcfg := ssd.Samsung970Pro("table-ssd")
	tcfg.BackingFile = tableFile
	tcfg.CapacityBytes = 1 << 40
	tdev, err := ssd.New(tcfg)
	if err != nil {
		return err
	}
	cfg.DataSSD = dev
	cfg.TableSSD = tdev
	return nil
}
