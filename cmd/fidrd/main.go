// Command fidrd runs a FIDR (or baseline) storage server speaking the
// simplified storage protocol of §6.2 over TCP.
//
// Usage:
//
//	fidrd [-addr :9400] [-arch fidr|fidr-nic|baseline] [-batch 64]
//
// On SIGINT the server flushes open containers and reports reduction and
// resource statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"fidr"
	"fidr/internal/core"
	"fidr/internal/proto"
	"fidr/internal/ssd"
)

func main() {
	addr := flag.String("addr", ":9400", "listen address")
	arch := flag.String("arch", "fidr", "architecture: fidr, fidr-nic, baseline")
	batch := flag.Int("batch", 64, "accelerator batch size in chunks")
	width := flag.Int("width", 4, "HW tree concurrent update width")
	dataFile := flag.String("data-file", "", "file-backed data volume (durable); empty = in-memory")
	tableFile := flag.String("table-file", "", "file-backed table volume (durable); empty = in-memory")
	recover := flag.Bool("recover", false, "recover state from a checkpoint on the table volume")
	flag.Parse()

	var a fidr.Arch
	switch *arch {
	case "fidr":
		a = fidr.FIDRFull
	case "fidr-nic":
		a = fidr.FIDRNicP2P
	case "baseline":
		a = fidr.Baseline
	default:
		log.Fatalf("fidrd: unknown architecture %q", *arch)
	}
	cfg := fidr.DefaultConfig(a)
	cfg.BatchChunks = *batch
	cfg.UpdateWidth = *width
	if err := attachVolumes(&cfg, *dataFile, *tableFile); err != nil {
		log.Fatalf("fidrd: %v", err)
	}
	var srv *fidr.Server
	var err error
	if *recover {
		if cfg.DataSSD == nil || cfg.TableSSD == nil {
			log.Fatal("fidrd: -recover requires -data-file and -table-file")
		}
		srv, err = core.RecoverServer(cfg)
	} else {
		srv, err = fidr.NewServer(cfg)
	}
	if err != nil {
		log.Fatalf("fidrd: %v", err)
	}
	durable := cfg.DataSSD != nil && cfg.TableSSD != nil
	l, err := proto.Serve(srv, *addr)
	if err != nil {
		log.Fatalf("fidrd: %v", err)
	}
	log.Printf("fidrd: %s server listening on %s", a, l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("fidrd: shutting down")
	if err := l.Close(); err != nil {
		log.Printf("fidrd: close: %v", err)
	}
	if durable {
		if err := srv.Checkpoint(); err != nil {
			log.Printf("fidrd: checkpoint: %v", err)
		} else {
			log.Printf("fidrd: checkpoint written; restart with -recover to resume")
		}
	} else if err := srv.Flush(); err != nil {
		log.Printf("fidrd: flush: %v", err)
	}
	st := srv.Stats()
	snap := srv.Ledger().Snapshot()
	fmt.Printf("writes=%d reads=%d unique=%d duplicate=%d stored/client=%.3f\n",
		st.ClientWrites, st.ClientReads, st.UniqueChunks, st.DuplicateChunks, st.ReductionRatio())
	fmt.Printf("host-memory B/B=%.3f host-CPU ns/B=%.3f cache-hit=%.3f\n",
		snap.MemPerClientByte(), snap.CPUNanosPerClientByte(), srv.CacheStats().HitRate())
}

// attachVolumes wires file-backed devices into the config. Both or
// neither must be set for a durable deployment.
func attachVolumes(cfg *fidr.Config, dataFile, tableFile string) error {
	if (dataFile == "") != (tableFile == "") {
		return fmt.Errorf("set both -data-file and -table-file (or neither)")
	}
	if dataFile == "" {
		return nil
	}
	dcfg := ssd.Samsung970Pro("data-ssd")
	dcfg.BackingFile = dataFile
	dev, err := ssd.New(dcfg)
	if err != nil {
		return err
	}
	tcfg := ssd.Samsung970Pro("table-ssd")
	tcfg.BackingFile = tableFile
	tcfg.CapacityBytes = 1 << 40
	tdev, err := ssd.New(tcfg)
	if err != nil {
		return err
	}
	cfg.DataSSD = dev
	cfg.TableSSD = tdev
	return nil
}
