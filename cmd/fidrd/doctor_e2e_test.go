package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// End-to-end exercise of the runtime health plane, run by CI's
// check-doctor step: boot a fidrd with the flight recorder armed and a
// tight watchdog, wedge async worker 0 through the -debug-hooks
// endpoint, and assert the full chain fires — watchdog_stall event with
// the probe name, an on-disk snapshot served through /debug/bundle, a
// failing `fidrcli doctor` verdict while stalled, and a healthy report
// after the worker recovers.

// pollEvents scrapes /events until an event of the wanted type appears
// or the deadline passes, returning whether it was seen and its detail.
func pollEvents(t *testing.T, maddr, typ string, deadline time.Duration) (bool, string) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		for _, ev := range eventsScrape(t, maddr, "") {
			if ev.Type == typ {
				return true, ev.Detail
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return false, ""
}

// bundleEntries fetches /debug/bundle and returns the tarball's entry
// names, or nil while the recorder has nothing captured yet.
func bundleEntries(t *testing.T, maddr string) []string {
	t.Helper()
	code, body := get(t, maddr, "/debug/bundle")
	if code != http.StatusOK {
		t.Fatalf("/debug/bundle: status %d: %s", code, body)
	}
	gz, err := gzip.NewReader(bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("/debug/bundle gzip: %v", err)
	}
	defer gz.Close()
	var names []string
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("/debug/bundle tar: %v", err)
		}
		names = append(names, hdr.Name)
	}
	return names
}

func TestDoctorE2E(t *testing.T) {
	dir := t.TempDir()
	fidrdBin, fidrcliBin := buildBinaries(t, dir)
	healthDir := filepath.Join(dir, "health")

	// Tight watchdog so the injected stall trips within a second; the
	// 4s stall leaves room to observe the failing state before the
	// worker wakes up and the recover edge lands.
	addr, maddr, _ := startDaemonWith(t, fidrdBin,
		"-debug-hooks", "-health-dir", healthDir,
		"-watchdog-interval", "50ms", "-watchdog-deadline", "250ms")
	drive(t, addr, 64)

	// Healthy daemon first: doctor must pass before any fault is
	// injected.
	out, err := exec.Command(fidrcliBin, "doctor", "-metrics-addr", maddr).CombinedOutput()
	if err != nil {
		t.Fatalf("doctor on healthy daemon exited non-zero: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "watchdog") {
		t.Errorf("doctor report missing watchdog check:\n%s", out)
	}

	// Wedge async worker 0. The heartbeat goes stale past the 250ms
	// deadline, so the watchdog must emit a stall event naming the
	// worker probe well before the stall ends.
	if code, body := get(t, maddr, "/debug/stall?d=4s"); code != http.StatusOK {
		t.Fatalf("/debug/stall: status %d: %s", code, body)
	}
	stalled, detail := pollEvents(t, maddr, "watchdog_stall", 2*time.Second)
	if !stalled {
		t.Fatal("no watchdog_stall event within 2s of injected stall")
	}
	if !strings.Contains(detail, "async.worker.g0") {
		t.Errorf("stall event detail %q does not name the stalled worker", detail)
	}

	// The stall must also have tripped the flight recorder: an on-disk
	// snapshot under -health-dir, served through /debug/bundle with the
	// core artifacts inside. Capture runs off the watchdog goroutine, so
	// poll briefly.
	var entries []string
	for stop := time.Now().Add(3 * time.Second); time.Now().Before(stop); {
		if entries = bundleEntries(t, maddr); len(entries) > 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(entries) == 0 {
		t.Fatal("/debug/bundle empty: flight recorder captured nothing")
	}
	joined := strings.Join(entries, "\n")
	for _, want := range []string{"async_worker_g0", "meta.json", "goroutines.txt", "metrics.txt", "events.jsonl"} {
		if !strings.Contains(joined, want) {
			t.Errorf("bundle missing %q:\n%s", want, joined)
		}
	}
	if disk, err := os.ReadDir(healthDir); err != nil || len(disk) == 0 {
		t.Errorf("health dir %s has no snapshots on disk (err=%v)", healthDir, err)
	}

	// While the worker is wedged, doctor must flag it and exit non-zero.
	out, err = exec.Command(fidrcliBin, "doctor", "-metrics-addr", maddr).CombinedOutput()
	if err == nil {
		t.Fatalf("doctor exited 0 against a stalled daemon:\n%s", out)
	}
	if !strings.Contains(string(out), "[FAIL] watchdog") {
		t.Errorf("doctor report does not FAIL the watchdog check:\n%s", out)
	}
	if !strings.Contains(string(out), "async.worker.g0") {
		t.Errorf("doctor report does not name the stalled probe:\n%s", out)
	}

	// The worker wakes up at the end of the stall; the watchdog must
	// emit the recover edge and doctor must go back to exit 0 (the
	// stall history downgrades to a warning, not a failure).
	recovered, _ := pollEvents(t, maddr, "watchdog_recover", 8*time.Second)
	if !recovered {
		t.Fatal("no watchdog_recover event after the stall elapsed")
	}
	drive(t, addr, 16) // queue drains again
	out, err = exec.Command(fidrcliBin, "doctor", "-metrics-addr", maddr).CombinedOutput()
	if err != nil {
		t.Fatalf("doctor exited non-zero after recovery: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "warning") {
		t.Errorf("recovered report should carry the stall-history warning:\n%s", out)
	}
}

// TestDoctorDisabledRecorderE2E runs doctor against a daemon without
// -health-dir: /debug/bundle answers 503 with a hint, and doctor
// degrades to a warning instead of failing.
func TestDoctorDisabledRecorderE2E(t *testing.T) {
	dir := t.TempDir()
	fidrdBin, fidrcliBin := buildBinaries(t, dir)
	addr, maddr, _ := startDaemonWith(t, fidrdBin)
	drive(t, addr, 32)

	code, body := get(t, maddr, "/debug/bundle")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "-health-dir") {
		t.Errorf("/debug/bundle without recorder: status %d, body %q", code, body)
	}

	out, err := exec.Command(fidrcliBin, "doctor", "-metrics-addr", maddr).CombinedOutput()
	if err != nil {
		t.Fatalf("doctor exited non-zero without recorder: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "disabled") {
		t.Errorf("doctor report should note the disabled recorder:\n%s", out)
	}
}
